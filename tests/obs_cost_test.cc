// Plan-shape cost accounting: per-plan-node actuals (obs::CostCollector),
// stable node ids (AssignNodeIds), the EXPLAIN ANALYZE report built from
// them, and the structured epoch records ViewManager emits. The headline
// assertion is the paper's §7 plan-shape claim made checkable: an
// incremental View-2 delete epoch reads *zero* base lineitem rows while a
// full recompute reads the whole table.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "algebra/explain.h"
#include "algebra/plan.h"
#include "ivm/view_manager.h"
#include "obs/cost.h"
#include "obs/event_log.h"
#include "obs/json_util.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/views.h"
#include "util/thread_pool.h"

namespace gpivot {
namespace {

using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;

TEST(NodeStatsTest, MergeAndIsZero) {
  obs::NodeStats a;
  EXPECT_TRUE(a.IsZero());
  a.invocations = 1;
  a.rows_in = 10;
  a.base_rows_read = 5;
  EXPECT_FALSE(a.IsZero());
  obs::NodeStats b;
  b.invocations = 2;
  b.rows_out = 7;
  b.delta_insert_rows = 3;
  a.Merge(b);
  EXPECT_EQ(a.invocations, 3u);
  EXPECT_EQ(a.rows_in, 10u);
  EXPECT_EQ(a.rows_out, 7u);
  EXPECT_EQ(a.base_rows_read, 5u);
  EXPECT_EQ(a.delta_insert_rows, 3u);
}

TEST(CostCollectorTest, AccumulatesPerNodeAndResets) {
  obs::CostCollector collector;
  obs::NodeStats one;
  one.invocations = 1;
  one.rows_out = 4;
  collector.Record(0, one);
  collector.Record(0, one);
  collector.Record(2, one);
  auto snapshot = collector.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].invocations, 2u);
  EXPECT_EQ(snapshot[0].rows_out, 8u);
  EXPECT_EQ(snapshot[2].invocations, 1u);
  collector.Reset();
  EXPECT_TRUE(collector.Snapshot().empty());
}

tpch::Config TinyConfig() {
  tpch::Config config;
  config.scale_factor = 0.002;
  config.seed = 7;
  return config;
}

TEST(PlanNodeIdsTest, PreOrderAndDagSharing) {
  Catalog catalog = tpch::MakeCatalog(tpch::Generate(TinyConfig())).value();
  PlanPtr scan = MakeScan(catalog, "orders").value();
  // A self-join over the *same* PlanPtr: the shared subtree must keep one id.
  PlanPtr join = MakeJoin(scan, scan, {"orderkey"});
  PlanNodeIds ids = AssignNodeIds(join);
  EXPECT_EQ(ids.IdOf(join.get()), 0);
  EXPECT_EQ(ids.IdOf(scan.get()), 1);
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids.IdOf(nullptr), -1);

  // Ids are a pure function of plan shape: re-assigning yields the same map.
  PlanNodeIds again = AssignNodeIds(join);
  EXPECT_EQ(again.IdOf(join.get()), 0);
  EXPECT_EQ(again.IdOf(scan.get()), 1);

  // The report renders the second reference as a shared back-reference.
  CostReport report = BuildCostReport(join, ids, {});
  ASSERT_EQ(report.nodes.size(), 3u);
  EXPECT_FALSE(report.nodes[0].shared_ref);
  EXPECT_FALSE(report.nodes[1].shared_ref);
  EXPECT_TRUE(report.nodes[2].shared_ref);
  EXPECT_EQ(report.nodes[2].id, report.nodes[1].id);
}

TEST(CostReportTest, EvaluateFillsScanAndOperatorActuals) {
  Catalog catalog = tpch::MakeCatalog(tpch::Generate(TinyConfig())).value();
  PlanPtr orders = MakeScan(catalog, "orders").value();
  PlanPtr customer = MakeScan(catalog, "customer").value();
  PlanPtr join = MakeJoin(orders, customer, {"custkey"});
  PlanNodeIds ids = AssignNodeIds(join);
  obs::CostCollector collector;
  ExecContext ctx;
  ctx.cost = &collector;
  ctx.plan_ids = &ids;
  Table result = Evaluate(join, catalog, ctx).value();

  CostReport report = BuildCostReport(join, ids, collector.Snapshot());
  const CostReportNode* orders_scan = report.FindScan("orders");
  ASSERT_NE(orders_scan, nullptr);
  EXPECT_EQ(orders_scan->stats.base_accesses, 1u);
  EXPECT_EQ(orders_scan->stats.base_rows_read,
            catalog.GetTable("orders").value()->num_rows());
  const CostReportNode* customer_scan = report.FindScan("customer");
  ASSERT_NE(customer_scan, nullptr);
  EXPECT_EQ(customer_scan->stats.base_rows_read,
            catalog.GetTable("customer").value()->num_rows());
  EXPECT_EQ(report.nodes[0].stats.rows_out, result.num_rows());
  EXPECT_GT(report.nodes[0].stats.build_rows, 0u);
  EXPECT_GT(report.nodes[0].stats.probe_rows, 0u);
  EXPECT_EQ(report.FindScan("lineitem"), nullptr);

  // Both renderings must be valid and carry the scan's base-access claim.
  std::string text = report.ToText();
  EXPECT_NE(text.find("SCAN orders"), std::string::npos) << text;
  EXPECT_NE(text.find("base_rows_read="), std::string::npos) << text;
  EXPECT_TRUE(obs::IsValidJson(report.ToJson())) << report.ToJson();
  EXPECT_TRUE(obs::IsValidJson(report.ToJsonLine()));
  EXPECT_EQ(report.ToJsonLine().find('\n'), std::string::npos);
}

ViewManager MakeView2Manager(const tpch::Config& config,
                             RefreshStrategy incremental_strategy) {
  Catalog catalog = tpch::MakeCatalog(tpch::Generate(config)).value();
  PlanPtr v2 = tpch::View2(catalog, config.max_line_numbers, 30000.0).value();
  ViewManager manager(std::move(catalog));
  manager.set_event_log(nullptr);  // no ambient GPIVOT_EVENT_LOG interference
  EXPECT_TRUE(manager.DefineView("v2_inc", v2, incremental_strategy).ok());
  EXPECT_TRUE(
      manager.DefineView("v2_full", v2, RefreshStrategy::kFullRecompute).ok());
  return manager;
}

// The acceptance claim: under the paper's combined-select strategy a pure
// delete batch on lineitem is answered entirely from the delta and the
// materialized view — the maintenance epoch reads 0 base lineitem rows —
// while the recompute baseline re-reads every one of them.
TEST(ExplainAnalyzeTest, View2DeleteIncrementalReadsNoBaseLineitemRows) {
  tpch::Config config = TinyConfig();
  ViewManager manager =
      MakeView2Manager(config, RefreshStrategy::kCombinedSelect);
  SourceDeltas deltas =
      tpch::MakeLineitemDeletes(manager.catalog(), 0.05, 42).value();
  ASSERT_OK(manager.ApplyUpdate(deltas));
  // Recompute evaluates the post-epoch state, so "touched them all" means
  // every row of lineitem as it stands after the deletes.
  size_t lineitem_rows =
      manager.catalog().GetTable("lineitem").value()->num_rows();

  CostReport incremental = manager.ExplainAnalyze("v2_inc").value();
  EXPECT_EQ(incremental.strategy, "CombinedSelect");
  const CostReportNode* delta_scan = incremental.FindScan("lineitem");
  ASSERT_NE(delta_scan, nullptr);
  EXPECT_EQ(delta_scan->stats.base_rows_read, 0u)
      << "incremental delete touched the base fact table:\n"
      << incremental.ToText();
  EXPECT_EQ(delta_scan->stats.base_accesses, 0u);
  // The propagation still did real work at that node: the delete delta
  // flowed through it.
  EXPECT_GT(delta_scan->stats.delta_delete_rows, 0u);

  CostReport recompute = manager.ExplainAnalyze("v2_full").value();
  EXPECT_EQ(recompute.strategy, "FullRecompute");
  const CostReportNode* full_scan = recompute.FindScan("lineitem");
  ASSERT_NE(full_scan, nullptr);
  EXPECT_EQ(full_scan->stats.base_rows_read, lineitem_rows)
      << recompute.ToText();
  EXPECT_GE(full_scan->stats.base_accesses, 1u);
}

TEST(ExplainAnalyzeTest, AllZeroBeforeFirstEpochAndResetPerEpoch) {
  tpch::Config config = TinyConfig();
  ViewManager manager =
      MakeView2Manager(config, RefreshStrategy::kCombinedSelect);
  CostReport before = manager.ExplainAnalyze("v2_full").value();
  for (const CostReportNode& node : before.nodes) {
    EXPECT_TRUE(node.stats.IsZero()) << before.ToText();
  }
  EXPECT_FALSE(manager.ExplainAnalyze("nope").ok());

  // Each epoch's report describes that epoch only, not a running total.
  SourceDeltas deltas =
      tpch::MakeLineitemDeletes(manager.catalog(), 0.02, 42).value();
  ASSERT_OK(manager.ApplyUpdate(deltas));
  uint64_t first =
      manager.ExplainAnalyze("v2_full").value().nodes[0].stats.invocations;
  SourceDeltas more =
      tpch::MakeLineitemDeletes(manager.catalog(), 0.02, 43).value();
  ASSERT_OK(manager.ApplyUpdate(more));
  EXPECT_EQ(
      manager.ExplainAnalyze("v2_full").value().nodes[0].stats.invocations,
      first);
}

TEST(EpochRecordTest, CommittedEpochReportsDeltasViewsAndCosts) {
  tpch::Config config = TinyConfig();
  ViewManager manager =
      MakeView2Manager(config, RefreshStrategy::kCombinedSelect);
  EXPECT_FALSE(manager.LastEpochReport().has_value());
  SourceDeltas deltas =
      tpch::MakeLineitemDeletes(manager.catalog(), 0.05, 42).value();
  ASSERT_OK(manager.ApplyUpdate(deltas));

  const auto& record = manager.LastEpochReport();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->seq, 1u);
  EXPECT_EQ(record->entry, "apply_update");
  EXPECT_EQ(record->outcome, "committed");
  EXPECT_TRUE(record->error.empty());
  ASSERT_EQ(record->deltas.size(), 1u);
  EXPECT_EQ(record->deltas[0].table, "lineitem");
  EXPECT_GT(record->deltas[0].delete_rows, 0u);
  ASSERT_EQ(record->views.size(), 2u);
  EXPECT_EQ(record->views[0].name, "v2_inc");
  EXPECT_EQ(record->views[0].strategy, "CombinedSelect");
  EXPECT_EQ(record->views[0].rows_after,
            manager.GetView("v2_inc").value()->num_rows());
  EXPECT_FALSE(record->views[0].cost.nodes.empty());

  std::string text = record->ToText();
  EXPECT_NE(text.find("delta lineitem"), std::string::npos) << text;
  EXPECT_NE(text.find("view v2_inc"), std::string::npos) << text;
  EXPECT_TRUE(obs::IsValidJson(record->ToJsonLine()));
}

TEST(EpochRecordTest, RejectedBatchIsRecordedWithoutViews) {
  tpch::Config config = TinyConfig();
  ViewManager manager =
      MakeView2Manager(config, RefreshStrategy::kCombinedSelect);
  SourceDeltas deltas =
      tpch::MakeLineitemDeletes(manager.catalog(), 0.02, 42).value();
  SourceDeltas bad;
  bad["no_such_table"] = std::move(deltas.begin()->second);
  EXPECT_FALSE(manager.ApplyUpdate(bad).ok());
  const auto& record = manager.LastEpochReport();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->outcome, "rejected");
  EXPECT_FALSE(record->error.empty());
  EXPECT_TRUE(record->views.empty());
  EXPECT_TRUE(obs::IsValidJson(record->ToJsonLine()));
}

TEST(EpochRecordTest, EventLogCollectsOneParsableLinePerEpoch) {
  std::string path = ::testing::TempDir() + "/gpivot_events.jsonl";
  std::remove(path.c_str());
  obs::EventLog log(path);
  ASSERT_TRUE(log.ok()) << log.error();

  tpch::Config config = TinyConfig();
  ViewManager manager =
      MakeView2Manager(config, RefreshStrategy::kCombinedSelect);
  manager.set_event_log(&log);
  SourceDeltas deltas =
      tpch::MakeLineitemDeletes(manager.catalog(), 0.05, 42).value();
  ASSERT_OK(manager.RefreshViews(deltas));
  ASSERT_OK(manager.AdvanceBase(deltas));

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> entries;
  while (std::getline(in, line)) {
    auto parsed = obs::ParseJson(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    entries.push_back(parsed->Find("entry")->string_value);
  }
  EXPECT_EQ(entries,
            (std::vector<std::string>{"refresh_views", "advance_base"}));
}

}  // namespace
}  // namespace gpivot
