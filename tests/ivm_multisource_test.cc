#include "util/string_util.h"
// Maintenance under deltas on the *other* base tables (orders, customer)
// and under simultaneous multi-table batches — exercising the join
// propagation rules' both-sides-changed terms on the real views.
#include <gtest/gtest.h>

#include "ivm/view_manager.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/views.h"
#include "util/random.h"

namespace gpivot {
namespace {

using ivm::Delta;
using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;
using testing::BagEqual;

class MultiSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.scale_factor = 0.001;
    config_.seed = 31;
    ASSERT_OK_AND_ASSIGN(catalog_,
                         tpch::MakeCatalog(tpch::Generate(config_)));
  }

  // Deletes a sample of orders rows (their lineitems become dangling, which
  // is fine relationally: the joins simply lose those rows).
  Delta OrdersDeletes(const Catalog& catalog, double fraction, uint64_t seed) {
    const Table* orders = catalog.GetTable("orders").value();
    Rng rng(seed);
    Delta delta = Delta::Empty(orders->schema());
    for (const Row& row : orders->rows()) {
      if (rng.Chance(fraction)) delta.deletes.AddRow(row);
    }
    return delta;
  }

  // "Relocates" a sample of customers: delete + reinsert with a different
  // nation (modeled as delete+insert, as the paper does for updates).
  Delta CustomerRelocations(const Catalog& catalog, double fraction,
                            uint64_t seed) {
    const Table* customer = catalog.GetTable("customer").value();
    Rng rng(seed);
    Delta delta = Delta::Empty(customer->schema());
    for (const Row& row : customer->rows()) {
      if (!rng.Chance(fraction)) continue;
      delta.deletes.AddRow(row);
      Row moved = row;
      moved[2] = Value::Int((row[2].AsInt() + 1) % 25);
      moved[3] = Value::Str(StrCat("NATION", moved[2].AsInt()));
      delta.inserts.AddRow(std::move(moved));
    }
    return delta;
  }

  void CheckConsistent(ViewManager* manager, const char* label) {
    ASSERT_OK_AND_ASSIGN(const ivm::MaterializedView* view,
                         manager->GetView("v"));
    ASSERT_OK_AND_ASSIGN(Table recomputed,
                         manager->RecomputeFromScratch("v"));
    ASSERT_TRUE(BagEqual(recomputed, view->table())) << label;
  }

  tpch::Config config_;
  Catalog catalog_;
};

TEST_F(MultiSourceTest, View1OrdersDeletesUpdateStrategy) {
  ASSERT_OK_AND_ASSIGN(PlanPtr query,
                       tpch::View1(catalog_, config_.max_line_numbers));
  ViewManager manager(std::move(catalog_));
  ASSERT_OK(manager.DefineView("v", query, RefreshStrategy::kUpdate));
  SourceDeltas deltas;
  deltas.emplace("orders", OrdersDeletes(manager.catalog(), 0.05, 1));
  ASSERT_OK(manager.ApplyUpdate(deltas));
  CheckConsistent(&manager, "orders deletes");
}

TEST_F(MultiSourceTest, View2CustomerRelocationsCombinedSelect) {
  ASSERT_OK_AND_ASSIGN(
      PlanPtr query, tpch::View2(catalog_, config_.max_line_numbers, 30000.0));
  ViewManager manager(std::move(catalog_));
  ASSERT_OK(manager.DefineView("v", query, RefreshStrategy::kCombinedSelect));
  SourceDeltas deltas;
  deltas.emplace("customer",
                 CustomerRelocations(manager.catalog(), 0.06, 2));
  ASSERT_OK(manager.ApplyUpdate(deltas));
  CheckConsistent(&manager, "customer relocations");
}

TEST_F(MultiSourceTest, View3CustomerRelocationsCombinedGroupBy) {
  ASSERT_OK_AND_ASSIGN(
      PlanPtr query,
      tpch::View3(catalog_, config_.first_year, config_.num_years));
  ViewManager manager(std::move(catalog_));
  ASSERT_OK(
      manager.DefineView("v", query, RefreshStrategy::kCombinedGroupBy));
  // A relocation moves a customer's whole aggregate row to a new group key.
  SourceDeltas deltas;
  deltas.emplace("customer",
                 CustomerRelocations(manager.catalog(), 0.06, 3));
  ASSERT_OK(manager.ApplyUpdate(deltas));
  CheckConsistent(&manager, "customer relocations");
}

TEST_F(MultiSourceTest, SimultaneousLineitemAndOrdersDeltas) {
  // Both join inputs change in one batch: the propagation must use the
  // both-sides-changed decomposition without double counting.
  for (RefreshStrategy strategy :
       {RefreshStrategy::kInsertDelete, RefreshStrategy::kUpdate}) {
    SetUp();
    ASSERT_OK_AND_ASSIGN(PlanPtr query,
                         tpch::View1(catalog_, config_.max_line_numbers));
    ViewManager manager(std::move(catalog_));
    ASSERT_OK(manager.DefineView("v", query, strategy));

    SourceDeltas deltas;
    ASSERT_OK_AND_ASSIGN(
        SourceDeltas line_deltas,
        tpch::MakeLineitemDeletes(manager.catalog(), 0.04, 4));
    deltas = std::move(line_deltas);
    deltas.emplace("orders", OrdersDeletes(manager.catalog(), 0.03, 5));
    ASSERT_OK(manager.ApplyUpdate(deltas));
    CheckConsistent(&manager,
                    ivm::RefreshStrategyToString(strategy));
  }
}

TEST_F(MultiSourceTest, AllThreeTablesAtOnce) {
  ASSERT_OK_AND_ASSIGN(
      PlanPtr query,
      tpch::View3(catalog_, config_.first_year, config_.num_years));
  ViewManager manager(std::move(catalog_));
  ASSERT_OK(
      manager.DefineView("v", query, RefreshStrategy::kCombinedGroupBy));

  SourceDeltas deltas;
  ASSERT_OK_AND_ASSIGN(
      SourceDeltas line_deltas,
      tpch::MakeLineitemInsertsMixed(manager.catalog(), config_, 0.04, 6));
  deltas = std::move(line_deltas);
  deltas.emplace("orders", OrdersDeletes(manager.catalog(), 0.02, 7));
  deltas.emplace("customer",
                 CustomerRelocations(manager.catalog(), 0.03, 8));
  ASSERT_OK(manager.ApplyUpdate(deltas));
  CheckConsistent(&manager, "three-table batch");
}

}  // namespace
}  // namespace gpivot
