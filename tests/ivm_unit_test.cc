// Unit tests for the IVM building blocks: deltas, the propagator's
// per-operator rules (incl. Fig. 22), the apply-phase rules (Fig. 23, 27,
// 29), and the paper's worked maintenance examples (Fig. 24–26, 30–31).
#include <gtest/gtest.h>

#include "core/gpivot.h"
#include "exec/basic_ops.h"
#include "ivm/apply.h"
#include "ivm/delta.h"
#include "ivm/maintenance.h"
#include "ivm/propagate.h"
#include "ivm/view_manager.h"
#include "test_util.h"

namespace gpivot {
namespace {

using ivm::Delta;
using ivm::DeltaPropagator;
using ivm::MaterializedView;
using ivm::PivotLayout;
using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;
using testing::BagEqual;
using testing::I;
using testing::MakeTable;
using testing::N;
using testing::S;

// ---- Delta basics --------------------------------------------------------------

TEST(DeltaTest, ApplyDeltaToTable) {
  Table t = MakeTable({{"x", DataType::kInt64}}, {{I(1)}, {I(2)}, {I(3)}});
  Delta delta = Delta::Empty(t.schema());
  delta.deletes.AddRow({I(2)});
  delta.inserts.AddRow({I(4)});
  ASSERT_OK(ivm::ApplyDeltaToTable(&t, delta));
  Table expected = MakeTable({{"x", DataType::kInt64}},
                             {{I(1)}, {I(3)}, {I(4)}});
  EXPECT_TRUE(BagEqual(expected, t));
}

TEST(DeltaTest, DeleteOfAbsentRowFails) {
  Table t = MakeTable({{"x", DataType::kInt64}}, {{I(1)}});
  Delta delta = Delta::Empty(t.schema());
  delta.deletes.AddRow({I(9)});
  EXPECT_TRUE(ivm::ApplyDeltaToTable(&t, delta).IsConstraintViolation());
}

// ---- Fig. 24/25/26: the Items ⋈ Payment example ---------------------------------

// The Items table of Fig. 24 (vertical attributes) and Payment lookups.
Catalog Fig24Catalog() {
  Catalog catalog;
  Table items = MakeTable({{"ID", DataType::kInt64},
                           {"Attribute", DataType::kString},
                           {"Value", DataType::kString}},
                          {{I(1), S("Manu"), S("Sony")},
                           {I(1), S("Type"), S("TV")},
                           {I(2), S("Manu"), S("Panasonic")}});
  EXPECT_TRUE(items.SetKey({"ID", "Attribute"}).ok());
  Table payment = MakeTable(
      {{"ID", DataType::kInt64}, {"Price", DataType::kInt64}},
      {{I(1), I(200)}, {I(2), I(300)}});
  EXPECT_TRUE(payment.SetKey({"ID"}).ok());
  EXPECT_TRUE(catalog.AddTable("Items", std::move(items)).ok());
  EXPECT_TRUE(catalog.AddTable("Payment", std::move(payment)).ok());
  return catalog;
}

PlanPtr Fig24View(const Catalog& catalog) {
  PlanPtr items = MakeScan(catalog, "Items").value();
  PlanPtr payment = MakeScan(catalog, "Payment").value();
  PivotSpec spec;
  spec.pivot_by = {"Attribute"};
  spec.pivot_on = {"Value"};
  spec.combos = {{S("Manu")}, {S("Type")}};
  return MakeJoin(MakeGPivot(items, spec), payment, {"ID"});
}

TEST(Fig24Test, InsertMaintenanceViaUpdateRules) {
  // Fig. 26: inserting (1, Type-ish rows) updates the view in place.
  Catalog catalog = Fig24Catalog();
  PlanPtr view = Fig24View(catalog);
  ViewManager manager(std::move(catalog));
  ASSERT_OK(manager.DefineView("v", view, RefreshStrategy::kUpdate));

  SourceDeltas deltas;
  Delta items_delta = Delta::Empty(
      manager.catalog().GetTable("Items").value()->schema());
  items_delta.inserts.AddRow({I(2), S("Type"), S("DVD")});
  deltas.emplace("Items", std::move(items_delta));
  ASSERT_OK(manager.ApplyUpdate(deltas));

  ASSERT_OK_AND_ASSIGN(const MaterializedView* mv, manager.GetView("v"));
  ASSERT_OK_AND_ASSIGN(Table recomputed, manager.RecomputeFromScratch("v"));
  EXPECT_TRUE(BagEqual(recomputed, mv->table()));
  // The Panasonic row was updated in place, not deleted and re-inserted:
  // it now carries (Panasonic, DVD, 300).
  const Schema& schema = mv->table().schema();
  size_t id = schema.ColumnIndexOrDie("ID");
  size_t manu = schema.ColumnIndexOrDie("Manu**Value");
  size_t type = schema.ColumnIndexOrDie("Type**Value");
  bool found = false;
  for (const Row& row : mv->table().rows()) {
    if (row[id] == I(2)) {
      found = true;
      EXPECT_EQ(row[manu], S("Panasonic"));
      EXPECT_EQ(row[type], S("DVD"));
    }
  }
  EXPECT_TRUE(found);
}

TEST(Fig24Test, DeleteToEmptyRemovesViewRow) {
  Catalog catalog = Fig24Catalog();
  PlanPtr view = Fig24View(catalog);
  ViewManager manager(std::move(catalog));
  ASSERT_OK(manager.DefineView("v", view, RefreshStrategy::kUpdate));

  SourceDeltas deltas;
  Delta items_delta = Delta::Empty(
      manager.catalog().GetTable("Items").value()->schema());
  items_delta.deletes.AddRow({I(2), S("Manu"), S("Panasonic")});
  deltas.emplace("Items", std::move(items_delta));
  ASSERT_OK(manager.ApplyUpdate(deltas));

  ASSERT_OK_AND_ASSIGN(const MaterializedView* mv, manager.GetView("v"));
  EXPECT_EQ(mv->num_rows(), 1u);  // only auction 1 remains
  ASSERT_OK_AND_ASSIGN(Table recomputed, manager.RecomputeFromScratch("v"));
  EXPECT_TRUE(BagEqual(recomputed, mv->table()));
}

// ---- Fig. 30/31: SELECT over GPIVOT maintenance ---------------------------------

TEST(Fig30Test, CombinedSelectRules) {
  // View: σ_{Type='TV' ∨ Manu='Sony'}-style condition on pivoted cells.
  Catalog catalog = Fig24Catalog();
  PlanPtr items = MakeScan(catalog, "Items").value();
  PlanPtr payment = MakeScan(catalog, "Payment").value();
  PivotSpec spec;
  spec.pivot_by = {"Attribute"};
  spec.pivot_on = {"Value"};
  spec.combos = {{S("Manu")}, {S("Type")}};
  PlanPtr filtered =
      MakeSelect(MakeGPivot(items, spec), Eq(Col("Type**Value"), Lit("TV")));
  PlanPtr view = MakeJoin(filtered, payment, {"ID"});

  ViewManager manager(std::move(catalog));
  ASSERT_OK(manager.DefineView("v", view, RefreshStrategy::kCombinedSelect));
  ASSERT_OK_AND_ASSIGN(const MaterializedView* mv0, manager.GetView("v"));
  EXPECT_EQ(mv0->num_rows(), 1u);  // only auction 1 has Type=TV

  // Insert (2, Type, TV): auction 2 newly satisfies the condition — the
  // recompute term must pick up its Manu row too.
  SourceDeltas deltas;
  Delta items_delta = Delta::Empty(
      manager.catalog().GetTable("Items").value()->schema());
  items_delta.inserts.AddRow({I(2), S("Type"), S("TV")});
  deltas.emplace("Items", std::move(items_delta));
  ASSERT_OK(manager.ApplyUpdate(deltas));

  ASSERT_OK_AND_ASSIGN(const MaterializedView* mv, manager.GetView("v"));
  EXPECT_EQ(mv->num_rows(), 2u);
  ASSERT_OK_AND_ASSIGN(Table recomputed, manager.RecomputeFromScratch("v"));
  EXPECT_TRUE(BagEqual(recomputed, mv->table()));

  // Delete (2, Type, TV): auction 2 no longer satisfies; postponed σ
  // filtering removes it even though its Manu cell is still non-⊥.
  SourceDeltas deletes;
  Delta items_del = Delta::Empty(
      manager.catalog().GetTable("Items").value()->schema());
  items_del.deletes.AddRow({I(2), S("Type"), S("TV")});
  deletes.emplace("Items", std::move(items_del));
  ASSERT_OK(manager.ApplyUpdate(deletes));
  ASSERT_OK_AND_ASSIGN(const MaterializedView* mv2, manager.GetView("v"));
  EXPECT_EQ(mv2->num_rows(), 1u);
  ASSERT_OK_AND_ASSIGN(Table recomputed2, manager.RecomputeFromScratch("v"));
  EXPECT_TRUE(BagEqual(recomputed2, mv2->table()));
}

// ---- DeltaPropagator per-operator rules ----------------------------------------

class PropagatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table t = MakeTable({{"k", DataType::kInt64},
                         {"a", DataType::kString},
                         {"b", DataType::kInt64}},
                        {{I(1), S("x"), I(10)},
                         {I(1), S("y"), I(20)},
                         {I(2), S("x"), I(30)}});
    ASSERT_OK(t.SetKey({"k", "a"}));
    ASSERT_OK(catalog_.AddTable("t", std::move(t)));
    delta_ = Delta::Empty(catalog_.GetTable("t").value()->schema());
  }

  SourceDeltas Deltas() {
    SourceDeltas deltas;
    deltas.emplace("t", delta_);
    return deltas;
  }

  // Checks propagate-then-apply == evaluate-on-post for `plan`.
  void ExpectConsistent(const PlanPtr& plan) {
    SourceDeltas deltas = Deltas();
    DeltaPropagator propagator(&catalog_, &deltas);
    ASSERT_OK_AND_ASSIGN(Delta out, propagator.Propagate(plan));
    ASSERT_OK_AND_ASSIGN(Table pre, propagator.EvaluatePre(plan));
    ASSERT_OK_AND_ASSIGN(Table post, propagator.EvaluatePost(plan));
    Table patched = pre;
    Status st = ivm::ApplyDeltaToTable(&patched, out);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_TRUE(patched.BagEquals(post))
        << "plan:\n" << PlanToString(plan) << "delta " << out.ToString();
  }

  Catalog catalog_;
  Delta delta_;
};

TEST_F(PropagatorTest, SelectRule) {
  delta_.inserts.AddRow({I(3), S("x"), I(99)});
  delta_.deletes.AddRow({I(1), S("y"), I(20)});
  PlanPtr plan = MakeSelect(MakeScan(catalog_, "t").value(),
                            Gt(Col("b"), Lit(int64_t{15})));
  ExpectConsistent(plan);
}

TEST_F(PropagatorTest, ProjectAndMapRules) {
  delta_.inserts.AddRow({I(3), S("x"), I(99)});
  PlanPtr scan = MakeScan(catalog_, "t").value();
  ExpectConsistent(MakeProject(scan, {"k", "b"}));
  ExpectConsistent(MakeMap(scan, {{"k", Col("k")},
                                  {"b2", Mul(Col("b"), Lit(int64_t{2}))}}));
}

TEST_F(PropagatorTest, SelfJoinBothSidesChanged) {
  delta_.inserts.AddRow({I(2), S("y"), I(40)});
  delta_.deletes.AddRow({I(1), S("y"), I(20)});
  PlanPtr scan = MakeScan(catalog_, "t").value();
  // t ⋈_k (π_{k}(σ_{a='x'}(t))): both join children change with the delta.
  PlanPtr right = MakeProject(
      MakeSelect(scan, Eq(Col("a"), Lit("x"))), {"k"});
  PlanPtr join = MakeJoin(right, scan, {"k"});
  ExpectConsistent(join);
}

TEST_F(PropagatorTest, GroupByRuleRecomputesAffectedGroups) {
  delta_.inserts.AddRow({I(1), S("z"), I(5)});
  delta_.deletes.AddRow({I(2), S("x"), I(30)});
  PlanPtr plan = MakeGroupBy(MakeScan(catalog_, "t").value(), {"k"},
                             {AggSpec::Sum("b", "total"),
                              AggSpec::CountStar("cnt")});
  ExpectConsistent(plan);
}

TEST_F(PropagatorTest, GPivotFig22Rule) {
  delta_.inserts.AddRow({I(2), S("y"), I(40)});
  delta_.deletes.AddRow({I(1), S("x"), I(10)});
  PivotSpec spec;
  spec.pivot_by = {"a"};
  spec.pivot_on = {"b"};
  spec.combos = {{S("x")}, {S("y")}};
  ExpectConsistent(MakeGPivot(MakeScan(catalog_, "t").value(), spec));
}

TEST_F(PropagatorTest, GUnpivotRule) {
  delta_.inserts.AddRow({I(3), S("x"), I(50)});
  PivotSpec spec;
  spec.pivot_by = {"a"};
  spec.pivot_on = {"b"};
  spec.combos = {{S("x")}, {S("y")}};
  PlanPtr pivot = MakeGPivot(MakeScan(catalog_, "t").value(), spec);
  ExpectConsistent(MakeGUnpivot(pivot, UnpivotSpec::InverseOf(spec)));
}

TEST_F(PropagatorTest, UnchangedSubtreeShortCircuits) {
  SourceDeltas deltas;  // empty
  DeltaPropagator propagator(&catalog_, &deltas);
  PlanPtr scan = MakeScan(catalog_, "t").value();
  ASSERT_OK_AND_ASSIGN(bool unchanged, propagator.Unchanged(scan));
  EXPECT_TRUE(unchanged);
  ASSERT_OK_AND_ASSIGN(Delta out, propagator.Propagate(scan));
  EXPECT_TRUE(out.empty());
}

// ---- MaterializedView / apply primitives ---------------------------------------

TEST(MaterializedViewTest, RequiresKey) {
  Table t = MakeTable({{"x", DataType::kInt64}}, {{I(1)}});
  EXPECT_FALSE(MaterializedView::Create(std::move(t)).ok());
}

TEST(MaterializedViewTest, RejectsDuplicateKeys) {
  Table t = MakeTable({{"x", DataType::kInt64}}, {{I(1)}, {I(1)}});
  ASSERT_OK(t.SetKey({"x"}));
  EXPECT_TRUE(
      MaterializedView::Create(std::move(t)).status().IsConstraintViolation());
}

TEST(MaterializedViewTest, InsertUpdateDelete) {
  Table t = MakeTable({{"k", DataType::kInt64}, {"v", DataType::kInt64}},
                      {{I(1), I(10)}, {I(2), I(20)}});
  ASSERT_OK(t.SetKey({"k"}));
  ASSERT_OK_AND_ASSIGN(MaterializedView view,
                       MaterializedView::Create(std::move(t)));
  ASSERT_OK(view.Insert({I(3), I(30)}));
  EXPECT_TRUE(view.Insert({I(3), I(31)}).IsConstraintViolation());
  EXPECT_EQ(view.num_rows(), 3u);
  auto pos = view.Lookup({I(2), N()}, view.key_indices());
  ASSERT_TRUE(pos.has_value());
  view.Update(*pos, {I(2), I(99)});
  EXPECT_EQ(view.RowAt(*pos)[1], I(99));
  view.Delete(*pos);
  EXPECT_EQ(view.num_rows(), 2u);
  EXPECT_FALSE(view.Lookup({I(2), N()}, view.key_indices()).has_value());
  // The swapped-in row is still findable.
  EXPECT_TRUE(view.Lookup({I(3), N()}, view.key_indices()).has_value());
}

TEST(PivotLayoutTest, FromSchemaAndGroupOps) {
  PivotSpec spec;
  spec.pivot_by = {"a"};
  spec.pivot_on = {"b1", "b2"};
  spec.combos = {{S("x")}, {S("y")}};
  Schema schema({{"k", DataType::kInt64},
                 {"x**b1", DataType::kInt64},
                 {"x**b2", DataType::kInt64},
                 {"y**b1", DataType::kInt64},
                 {"y**b2", DataType::kInt64}});
  ASSERT_OK_AND_ASSIGN(PivotLayout layout,
                       PivotLayout::FromSchema(schema, spec));
  EXPECT_EQ(layout.first_cell_index, 1u);
  EXPECT_EQ(layout.key_positions, (std::vector<size_t>{0}));
  Row row = {I(1), I(10), N(), N(), N()};
  EXPECT_TRUE(layout.GroupPresent(row, 0));
  EXPECT_FALSE(layout.GroupPresent(row, 1));
  EXPECT_FALSE(layout.AllGroupsNull(row));
  layout.ClearGroup(&row, 0);
  EXPECT_TRUE(layout.AllGroupsNull(row));
}

TEST(PivotLayoutTest, RejectsNonContiguousCells) {
  PivotSpec spec;
  spec.pivot_by = {"a"};
  spec.pivot_on = {"b"};
  spec.combos = {{S("x")}, {S("y")}};
  Schema schema({{"x**b", DataType::kInt64},
                 {"k", DataType::kInt64},
                 {"y**b", DataType::kInt64}});
  EXPECT_FALSE(PivotLayout::FromSchema(schema, spec).ok());
}

TEST(ApplyInsertDeleteTest, DeleteOfAbsentKeyFails) {
  Table t = MakeTable({{"k", DataType::kInt64}, {"v", DataType::kInt64}},
                      {{I(1), I(10)}});
  ASSERT_OK(t.SetKey({"k"}));
  ASSERT_OK_AND_ASSIGN(MaterializedView view,
                       MaterializedView::Create(std::move(t)));
  Delta delta = Delta::Empty(view.table().schema());
  delta.deletes.AddRow({I(9), I(0)});
  EXPECT_TRUE(ivm::ApplyInsertDelete(&view, delta).IsConstraintViolation());
}

// ---- ViewManager surface --------------------------------------------------------

TEST(ViewManagerTest, DuplicateViewNameRejected) {
  Catalog catalog = Fig24Catalog();
  PlanPtr view = Fig24View(catalog);
  ViewManager manager(std::move(catalog));
  ASSERT_OK(manager.DefineView("v", view, RefreshStrategy::kFullRecompute));
  EXPECT_TRUE(manager.DefineView("v", view, RefreshStrategy::kFullRecompute)
                  .IsInvalidArgument());
  EXPECT_TRUE(manager.GetView("nope").status().IsNotFound());
  EXPECT_TRUE(manager.GetPlan("nope").status().IsNotFound());
}

TEST(ViewManagerTest, MultipleViewsRefreshTogether) {
  Catalog catalog = Fig24Catalog();
  PlanPtr view = Fig24View(catalog);
  ViewManager manager(std::move(catalog));
  ASSERT_OK(manager.DefineView("a", view, RefreshStrategy::kUpdate));
  ASSERT_OK(manager.DefineView("b", view, RefreshStrategy::kInsertDelete));

  SourceDeltas deltas;
  Delta items_delta = Delta::Empty(
      manager.catalog().GetTable("Items").value()->schema());
  items_delta.inserts.AddRow({I(2), S("Type"), S("DVD")});
  deltas.emplace("Items", std::move(items_delta));
  ASSERT_OK(manager.ApplyUpdate(deltas));

  ASSERT_OK_AND_ASSIGN(Table recomputed_a, manager.RecomputeFromScratch("a"));
  ASSERT_OK_AND_ASSIGN(const MaterializedView* a, manager.GetView("a"));
  ASSERT_OK_AND_ASSIGN(const MaterializedView* b, manager.GetView("b"));
  EXPECT_TRUE(BagEqual(recomputed_a, a->table()));
  // View b keeps the original (pre-rewrite) column order.
  EXPECT_TRUE(testing::BagEqualModuloColumnOrder(recomputed_a, b->table()));
}

}  // namespace
}  // namespace gpivot
