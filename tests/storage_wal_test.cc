// Unit behaviors of the WAL and checkpoint files: append/scan round-trip,
// every torn-tail shape truncating instead of failing, failed-append
// self-repair, Reset/TruncateTo, atomic checkpoint writes, newest-first
// checkpoint discovery with corrupt files passed over, and the walinspect
// report on clean and damaged artifacts.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "ivm/delta.h"
#include "obs/json_util.h"
#include "storage/checkpoint.h"
#include "storage/inspect.h"
#include "storage/serialize.h"
#include "storage/wal.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/file_io.h"

namespace gpivot::storage {
namespace {

using gpivot::testing::I;
using gpivot::testing::MakeTable;
using gpivot::testing::S;

ivm::SourceDeltas DeltasFor(int64_t id) {
  Table inserts = MakeTable({{"ID", DataType::kInt64},
                             {"Attribute", DataType::kString}},
                            {{I(id), S("Manu")}});
  Table deletes =
      MakeTable({{"ID", DataType::kInt64}, {"Attribute", DataType::kString}},
                {});
  ivm::SourceDeltas deltas;
  deltas.emplace("Items", ivm::Delta{std::move(inserts), std::move(deletes)});
  return deltas;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/wal_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(EnsureDir(dir_).ok());
    path_ = dir_ + "/wal.gwal";
    ASSERT_TRUE(RemoveFileIfExists(path_).ok());
  }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, AppendScanRoundTrip) {
  {
    auto writer = WalWriter::Open(path_, 0);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE(writer
                      ->Append(seq,
                               seq == 2 ? "batched_apply_update"
                                        : "apply_update",
                               DeltasFor(static_cast<int64_t>(seq)))
                      .ok());
    }
  }
  auto wal = ReadWal(path_);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(wal->entries.size(), 3u);
  EXPECT_EQ(wal->torn_bytes, 0u);
  EXPECT_TRUE(wal->tail_error.empty());
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    const WalEntry& entry = wal->entries[seq - 1];
    EXPECT_EQ(entry.seq, seq);
    EXPECT_EQ(entry.entry,
              seq == 2 ? "batched_apply_update" : "apply_update");
    EXPECT_EQ(entry.TotalRows(), 1u);
    ASSERT_EQ(entry.deltas.count("Items"), 1u);
    EXPECT_EQ(entry.deltas.at("Items").inserts.rows()[0][0],
              I(static_cast<int64_t>(seq)));
  }
}

TEST_F(WalTest, MissingFileIsNotFound) {
  auto wal = ReadWal(path_);
  ASSERT_FALSE(wal.ok());
  EXPECT_TRUE(wal.status().IsNotFound());
}

TEST_F(WalTest, TornTailShapesTruncateNotFail) {
  {
    auto writer = WalWriter::Open(path_, 0);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(1, "apply_update", DeltasFor(1)).ok());
    ASSERT_TRUE(writer->Append(2, "apply_update", DeltasFor(2)).ok());
  }
  auto pristine = ReadFileToString(path_);
  ASSERT_TRUE(pristine.ok());
  auto clean = ReadWal(path_);
  ASSERT_TRUE(clean.ok());
  uint64_t first_entry_end =
      kWalHeaderSize +
      (clean->valid_bytes - kWalHeaderSize) / 2;  // entries are equal-sized
  // Every possible truncation point inside entry 2 leaves entry 1 intact.
  for (uint64_t cut = first_entry_end; cut < pristine->size(); ++cut) {
    ASSERT_TRUE(
        AtomicWriteFile(path_, std::string_view(*pristine).substr(0, cut))
            .ok());
    auto wal = ReadWal(path_);
    ASSERT_TRUE(wal.ok()) << "cut=" << cut;
    EXPECT_EQ(wal->entries.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(wal->valid_bytes, first_entry_end);
    EXPECT_EQ(wal->torn_bytes, cut - first_entry_end);
    if (cut > first_entry_end) {
      EXPECT_FALSE(wal->tail_error.empty());
    }
    // Open() truncates the tail and appends cleanly after it.
    auto writer = WalWriter::Open(path_, wal->valid_bytes);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(2, "apply_update", DeltasFor(2)).ok());
    auto repaired = ReadWal(path_);
    ASSERT_TRUE(repaired.ok());
    EXPECT_EQ(repaired->entries.size(), 2u);
    EXPECT_EQ(repaired->torn_bytes, 0u);
  }
}

TEST_F(WalTest, TornHeaderIsInvalidArgument) {
  ASSERT_TRUE(AtomicWriteFile(path_, "GW").ok());
  auto wal = ReadWal(path_);
  ASSERT_FALSE(wal.ok());
  EXPECT_TRUE(wal.status().IsInvalidArgument());
  // Open(path, 0) rebuilds the file from scratch.
  auto writer = WalWriter::Open(path_, 0);
  ASSERT_TRUE(writer.ok());
  auto rebuilt = ReadWal(path_);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->entries.size(), 0u);
}

TEST_F(WalTest, FailedAppendSelfRepairsOnRetry) {
  auto writer = WalWriter::Open(path_, 0);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, "apply_update", DeltasFor(1)).ok());
  uint64_t durable = writer->offset();

  // Make the append tear mid-write: real partial bytes land on disk.
  FaultInjector& injector = FaultInjector::Global();
  injector.Arm(2);  // poke 1 = "file.write", poke 2 = "file.write.torn"
  Status st = writer->Append(2, "apply_update", DeltasFor(2));
  EXPECT_TRUE(injector.fired());
  injector.Disarm();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(writer->offset(), durable);

  // The file currently carries torn garbage past `durable`...
  auto torn = ReadWal(path_);
  ASSERT_TRUE(torn.ok());
  EXPECT_EQ(torn->entries.size(), 1u);
  EXPECT_GT(torn->torn_bytes, 0u);

  // ...which the next append clears before writing.
  ASSERT_TRUE(writer->Append(2, "apply_update", DeltasFor(2)).ok());
  auto repaired = ReadWal(path_);
  ASSERT_TRUE(repaired.ok());
  ASSERT_EQ(repaired->entries.size(), 2u);
  EXPECT_EQ(repaired->torn_bytes, 0u);
  EXPECT_EQ(repaired->entries[1].seq, 2u);
}

TEST_F(WalTest, TruncateToDropsLastEntryAndResetEmpties) {
  auto writer = WalWriter::Open(path_, 0);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, "apply_update", DeltasFor(1)).ok());
  uint64_t before_second = writer->offset();
  ASSERT_TRUE(writer->Append(2, "apply_update", DeltasFor(2)).ok());

  ASSERT_TRUE(writer->TruncateTo(before_second).ok());
  auto wal = ReadWal(path_);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(wal->entries.size(), 1u);
  EXPECT_EQ(wal->entries[0].seq, 1u);
  EXPECT_EQ(wal->torn_bytes, 0u);

  ASSERT_TRUE(writer->Reset().ok());
  auto empty = ReadWal(path_);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->entries.size(), 0u);
  EXPECT_EQ(empty->valid_bytes, kWalHeaderSize);
}

CheckpointContents FixtureCheckpoint(uint64_t seq) {
  CheckpointContents contents;
  contents.epoch_seq = seq;
  Table items = MakeTable({{"ID", DataType::kInt64},
                           {"Attribute", DataType::kString}},
                          {{I(1), S("Manu")}, {I(seq), S("Type")}});
  EXPECT_TRUE(items.SetKey({"ID", "Attribute"}).ok());
  contents.base_tables.emplace("Items", std::move(items));
  contents.view_tables.emplace(
      "v", std::make_shared<const Table>(
               MakeTable({{"ID", DataType::kInt64}}, {{I(seq)}})));
  return contents;
}

TEST_F(WalTest, CheckpointRoundTripAndDiscovery) {
  ASSERT_TRUE(
      WriteCheckpoint(dir_ + "/" + CheckpointFileName(2), FixtureCheckpoint(2))
          .ok());
  ASSERT_TRUE(
      WriteCheckpoint(dir_ + "/" + CheckpointFileName(10),
                      FixtureCheckpoint(10))
          .ok());
  // A corrupt newer file must be discoverable but unreadable.
  ASSERT_TRUE(
      AtomicWriteFile(dir_ + "/" + CheckpointFileName(11), "GPCKgarbage")
          .ok());

  auto names = FindCheckpoints(dir_);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 3u);
  EXPECT_EQ((*names)[0], CheckpointFileName(11));  // newest first
  EXPECT_EQ((*names)[1], CheckpointFileName(10));
  EXPECT_EQ((*names)[2], CheckpointFileName(2));

  EXPECT_FALSE(ReadCheckpoint(dir_ + "/" + (*names)[0]).ok());
  auto loaded = ReadCheckpoint(dir_ + "/" + (*names)[1]);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch_seq, 10u);
  ASSERT_EQ(loaded->base_tables.count("Items"), 1u);
  EXPECT_EQ(loaded->base_tables.at("Items").key(),
            (std::vector<std::string>{"ID", "Attribute"}));
  EXPECT_EQ(loaded->view_tables.at("v")->rows()[0][0], I(10));
}

TEST_F(WalTest, CheckpointWriteIsAtomicUnderFaults) {
  const std::string path = dir_ + "/" + CheckpointFileName(5);
  ASSERT_TRUE(WriteCheckpoint(path, FixtureCheckpoint(5)).ok());

  // Sweep every fault point in the atomic-write protocol; after each
  // failure the original file must still read back intact.
  FaultInjector& injector = FaultInjector::Global();
  size_t points = 0;
  for (size_t n = 1;; ++n) {
    injector.Arm(n);
    Status st = WriteCheckpoint(path, FixtureCheckpoint(6));
    bool fired = injector.fired();
    injector.Disarm();
    if (st.ok()) {
      EXPECT_FALSE(fired);
      break;
    }
    ASSERT_TRUE(fired) << "non-injected failure: " << st.ToString();
    points = n;
    // Atomicity: the real name always holds a complete checkpoint — the
    // old one before the rename point, the new one after it (a dirsync
    // fault hits once the rename itself already landed). Never garbage.
    auto survived = ReadCheckpoint(path);
    ASSERT_TRUE(survived.ok())
        << "fault at point " << n << " destroyed the checkpoint: "
        << survived.status().ToString();
    EXPECT_TRUE(survived->epoch_seq == 5u || survived->epoch_seq == 6u);
  }
  EXPECT_GE(points, 3u);  // write, fsync, rename at minimum
  auto replaced = ReadCheckpoint(path);
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced->epoch_seq, 6u);
}

TEST_F(WalTest, InspectReportsCleanAndDamaged) {
  {
    auto writer = WalWriter::Open(path_, 0);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(1, "apply_update", DeltasFor(1)).ok());
  }
  ASSERT_TRUE(
      WriteCheckpoint(dir_ + "/" + CheckpointFileName(1), FixtureCheckpoint(1))
          .ok());
  auto clean = Inspect(dir_);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(clean->clean) << clean->text;
  EXPECT_NE(clean->text.find("entry seq=1"), std::string::npos);
  EXPECT_NE(clean->text.find("epoch_seq=1"), std::string::npos);

  // Tear the WAL tail: inspect flags the directory.
  auto bytes = ReadFileToString(path_);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      AtomicWriteFile(path_,
                      std::string_view(*bytes).substr(0, bytes->size() - 3))
          .ok());
  auto damaged = Inspect(dir_);
  ASSERT_TRUE(damaged.ok());
  EXPECT_FALSE(damaged->clean);
  EXPECT_NE(damaged->text.find("TORN"), std::string::npos);

  auto missing = Inspect(dir_ + "/nope");
  EXPECT_FALSE(missing.ok());
}

TEST_F(WalTest, InspectJsonMirrorsTheTextReport) {
  {
    auto writer = WalWriter::Open(path_, 0);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(1, "apply_update", DeltasFor(1)).ok());
    ASSERT_TRUE(writer->Append(2, "apply_update", DeltasFor(2)).ok());
  }
  ASSERT_TRUE(
      WriteCheckpoint(dir_ + "/" + CheckpointFileName(2), FixtureCheckpoint(2))
          .ok());

  auto clean = Inspect(dir_);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_TRUE(obs::IsValidJson(clean->json)) << clean->json;
  auto parsed = obs::ParseJson(clean->json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->Find("clean")->bool_value);
  const obs::JsonValue* files = parsed->Find("files");
  ASSERT_TRUE(files != nullptr && files->is_array());
  ASSERT_EQ(files->array.size(), 2u);  // one checkpoint + one WAL

  const obs::JsonValue* wal_file = nullptr;
  const obs::JsonValue* checkpoint_file = nullptr;
  for (const obs::JsonValue& file : files->array) {
    const std::string& kind = file.Find("kind")->string_value;
    if (kind == "wal") wal_file = &file;
    if (kind == "checkpoint") checkpoint_file = &file;
  }
  ASSERT_NE(wal_file, nullptr) << clean->json;
  EXPECT_TRUE(wal_file->Find("clean")->bool_value);
  EXPECT_EQ(wal_file->Find("frames")->number_value, 2.0);
  EXPECT_EQ(wal_file->Find("torn_bytes")->number_value, 0.0);
  // A clean WAL's durable offset is exactly its valid byte count.
  EXPECT_EQ(wal_file->Find("durable_offset")->number_value,
            wal_file->Find("valid_bytes")->number_value);
  const obs::JsonValue* entries = wal_file->Find("entries");
  ASSERT_TRUE(entries != nullptr && entries->is_array());
  ASSERT_EQ(entries->array.size(), 2u);
  EXPECT_EQ(entries->array[0].Find("seq")->number_value, 1.0);
  EXPECT_EQ(entries->array[0].Find("entry")->string_value, "apply_update");
  EXPECT_EQ(entries->array[1].Find("rows")->number_value, 1.0);
  ASSERT_NE(checkpoint_file, nullptr) << clean->json;
  EXPECT_EQ(checkpoint_file->Find("epoch_seq")->number_value, 2.0);
  ASSERT_TRUE(checkpoint_file->Find("tables")->is_array());

  // Tear the tail: the JSON flips to unclean with the torn diagnosis.
  auto bytes = ReadFileToString(path_);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      AtomicWriteFile(path_,
                      std::string_view(*bytes).substr(0, bytes->size() - 3))
          .ok());
  auto damaged = Inspect(path_);  // single-file form carries JSON too
  ASSERT_TRUE(damaged.ok());
  ASSERT_TRUE(obs::IsValidJson(damaged->json)) << damaged->json;
  auto damaged_parsed = obs::ParseJson(damaged->json);
  ASSERT_TRUE(damaged_parsed.has_value());
  EXPECT_FALSE(damaged_parsed->Find("clean")->bool_value);
  const obs::JsonValue& torn_wal = damaged_parsed->Find("files")->array[0];
  EXPECT_FALSE(torn_wal.Find("clean")->bool_value);
  EXPECT_EQ(torn_wal.Find("frames")->number_value, 1.0);
  EXPECT_GT(torn_wal.Find("torn_bytes")->number_value, 0.0);
  EXPECT_FALSE(torn_wal.Find("tail_error")->string_value.empty());
  // The surviving frame is still enumerated; the durable offset stops
  // before the torn bytes.
  EXPECT_EQ(torn_wal.Find("entries")->array.size(), 1u);
  EXPECT_EQ(torn_wal.Find("durable_offset")->number_value,
            torn_wal.Find("valid_bytes")->number_value);
}

}  // namespace
}  // namespace gpivot::storage
