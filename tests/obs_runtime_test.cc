// RuntimeRegistry / WindowedRates contract tests: sliding-window rate math
// (including ring wraparound and the empty-window cases), the stuck-epoch
// watchdog's once-per-episode counter, the epoch record ring's capacity,
// and JSON section registration. WindowedRates takes caller-supplied
// timestamps, so everything here is deterministic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/runtime.h"

namespace gpivot {
namespace {

using obs::IsValidJson;
using obs::MetricsSnapshot;
using obs::RuntimeRegistry;
using obs::StuckEpochInfo;
using obs::WindowedRates;

MetricsSnapshot SnapshotWith(uint64_t ops, uint64_t epochs) {
  MetricsSnapshot s;
  s.counters["serve.query.ops"] = ops;
  s.counters["ivm.epoch.resolved"] = epochs;
  return s;
}

TEST(WindowedRatesTest, EmptyAndSingleSampleYieldZeroRates) {
  WindowedRates rates(4);
  EXPECT_EQ(rates.size(), 0u);
  EXPECT_EQ(rates.WindowSeconds(), 0.0);
  EXPECT_EQ(rates.CounterRate("serve.query.ops"), 0.0);
  EXPECT_EQ(rates.WindowQuantileMs("serve.query.ms", 0.99), 0.0);

  rates.Push(100.0, SnapshotWith(10, 1));
  EXPECT_EQ(rates.size(), 1u);
  EXPECT_EQ(rates.WindowSeconds(), 0.0);
  EXPECT_EQ(rates.CounterRate("serve.query.ops"), 0.0);
}

TEST(WindowedRatesTest, BasicCounterRate) {
  WindowedRates rates(4);
  rates.Push(100.0, SnapshotWith(10, 2));
  rates.Push(110.0, SnapshotWith(60, 7));
  EXPECT_EQ(rates.WindowSeconds(), 10.0);
  EXPECT_DOUBLE_EQ(rates.CounterRate("serve.query.ops"), 5.0);
  EXPECT_DOUBLE_EQ(rates.CounterRate("ivm.epoch.resolved"), 0.5);
  // A counter absent from both ends rates as 0.
  EXPECT_EQ(rates.CounterRate("no.such.counter"), 0.0);
}

TEST(WindowedRatesTest, CounterAppearingMidWindowCountsFromZero) {
  WindowedRates rates(4);
  rates.Push(0.0, MetricsSnapshot{});
  MetricsSnapshot later;
  later.counters["serve.query.ops"] = 20;
  rates.Push(4.0, later);
  EXPECT_DOUBLE_EQ(rates.CounterRate("serve.query.ops"), 5.0);
}

TEST(WindowedRatesTest, WraparoundEvictsOldestSamples) {
  WindowedRates rates(3);
  rates.Push(0.0, SnapshotWith(0, 0));
  rates.Push(10.0, SnapshotWith(100, 0));
  rates.Push(20.0, SnapshotWith(200, 0));
  EXPECT_EQ(rates.size(), 3u);
  // Push a 4th: the t=0 sample falls out, window becomes [10, 30].
  rates.Push(30.0, SnapshotWith(500, 0));
  EXPECT_EQ(rates.size(), 3u);
  EXPECT_EQ(rates.WindowSeconds(), 20.0);
  EXPECT_DOUBLE_EQ(rates.CounterRate("serve.query.ops"), (500.0 - 100.0) / 20.0);
  // Keep pushing well past capacity: still exactly `capacity` retained.
  for (int i = 0; i < 10; ++i) {
    rates.Push(40.0 + i, SnapshotWith(500 + 10 * i, 0));
  }
  EXPECT_EQ(rates.size(), 3u);
  EXPECT_EQ(rates.capacity(), 3u);
  EXPECT_EQ(rates.WindowSeconds(), 2.0);
}

TEST(WindowedRatesTest, CounterResetYieldsZeroNotNegative) {
  WindowedRates rates(4);
  rates.Push(0.0, SnapshotWith(100, 0));
  rates.Push(10.0, SnapshotWith(5, 0));  // process restarted mid-window
  EXPECT_EQ(rates.CounterRate("serve.query.ops"), 0.0);
}

TEST(WindowedRatesTest, HistogramCountRateAndWindowQuantile) {
  MetricsSnapshot oldest;
  oldest.histograms["serve.query.ms"].Record(1.0);
  oldest.histograms["serve.query.ms"].Record(1.0);

  MetricsSnapshot newest = oldest;
  // 8 more events land inside the window, all ~16ms.
  for (int i = 0; i < 8; ++i) newest.histograms["serve.query.ms"].Record(16.0);

  WindowedRates rates(4);
  rates.Push(100.0, oldest);
  rates.Push(104.0, newest);
  EXPECT_DOUBLE_EQ(rates.HistogramCountRate("serve.query.ms"), 2.0);

  // The two 1ms events predate the window; the window-p50 must sit in the
  // 16ms bucket, not get dragged down toward 1ms.
  double p50 = rates.WindowQuantileMs("serve.query.ms", 0.5);
  EXPECT_GE(p50, 16.0);
  EXPECT_LE(p50, 32.0);
  EXPECT_EQ(rates.WindowQuantileMs("absent", 0.5), 0.0);
}

TEST(RuntimeRegistryTest, DisabledByDefaultAndResettable) {
  RuntimeRegistry& runtime = RuntimeRegistry::Global();
  runtime.ResetForTest();
  runtime.set_enabled(false);
  runtime.metrics().SetGauge("g", 1.0);
  EXPECT_TRUE(runtime.metrics().Snapshot().gauges.empty());
  runtime.set_enabled(true);
  runtime.metrics().SetGauge("g", 1.0);
  EXPECT_EQ(runtime.metrics().Snapshot().gauges.at("g").at({"", ""}), 1.0);
  runtime.ResetForTest();
  EXPECT_TRUE(runtime.metrics().Snapshot().gauges.empty());
  runtime.set_enabled(false);
}

TEST(RuntimeRegistryTest, WatchdogFlagsStuckEpochOncePerEpisode) {
  RuntimeRegistry& runtime = RuntimeRegistry::Global();
  runtime.ResetForTest();
  runtime.set_enabled(true);

  // No phase active: never stuck, regardless of bound.
  EXPECT_FALSE(runtime.CheckStuck(0.0).stuck);
  EXPECT_FALSE(runtime.CheckStuck(-1.0).stuck);

  runtime.BeginEpochPhase(7, "stage");
  // A generous bound: not stuck yet.
  EXPECT_FALSE(runtime.CheckStuck(60'000.0).stuck);
  // Zero/negative bounds disable the watchdog rather than tripping it.
  EXPECT_FALSE(runtime.CheckStuck(0.0).stuck);

  // An impossibly tight positive bound: stuck, with the phase identified.
  StuckEpochInfo info = runtime.CheckStuck(1e-9);
  EXPECT_TRUE(info.stuck);
  EXPECT_EQ(info.seq, 7u);
  EXPECT_EQ(info.phase, "stage");
  EXPECT_GE(info.elapsed_ms, 0.0);
  // The counter increments once per episode, not once per poll.
  EXPECT_TRUE(runtime.CheckStuck(1e-9).stuck);
  EXPECT_TRUE(runtime.CheckStuck(1e-9).stuck);
  EXPECT_EQ(runtime.metrics().Snapshot().counters.at("ivm.epoch.stuck"), 1u);

  // Moving to the next phase re-arms the episode.
  runtime.BeginEpochPhase(7, "commit");
  EXPECT_TRUE(runtime.CheckStuck(1e-9).stuck);
  EXPECT_EQ(runtime.metrics().Snapshot().counters.at("ivm.epoch.stuck"), 2u);

  // EndEpoch clears the heartbeat entirely.
  runtime.EndEpoch(7);
  EXPECT_FALSE(runtime.CheckStuck(1e-9).stuck);
  // A stale EndEpoch for an older seq must not clear a newer heartbeat.
  runtime.BeginEpochPhase(9, "stage");
  runtime.EndEpoch(7);
  EXPECT_TRUE(runtime.CheckStuck(1e-9).stuck);
  runtime.EndEpoch(9);
  EXPECT_FALSE(runtime.CheckStuck(1e-9).stuck);

  runtime.ResetForTest();
  runtime.set_enabled(false);
}

TEST(RuntimeRegistryTest, EpochRingKeepsMostRecentRecords) {
  RuntimeRegistry& runtime = RuntimeRegistry::Global();
  runtime.ResetForTest();
  runtime.set_enabled(true);
  const size_t cap = RuntimeRegistry::kEpochRingCapacity;
  for (size_t i = 0; i < cap + 10; ++i) {
    runtime.RecordEpochJson("{\"seq\": " + std::to_string(i) + "}");
  }
  std::vector<std::string> ring = runtime.EpochRing();
  ASSERT_EQ(ring.size(), cap);
  // Oldest retained is #10, newest is #(cap + 9), in order.
  EXPECT_EQ(ring.front(), "{\"seq\": 10}");
  EXPECT_EQ(ring.back(), "{\"seq\": " + std::to_string(cap + 9) + "}");
  for (const std::string& line : ring) EXPECT_TRUE(IsValidJson(line));
  runtime.ResetForTest();
  runtime.set_enabled(false);
}

TEST(RuntimeRegistryTest, JsonSectionsRegisterCollectUnregister) {
  RuntimeRegistry& runtime = RuntimeRegistry::Global();
  int token_a = runtime.RegisterJsonSection(
      "alpha", [] { return std::string("{\"x\": 1}"); });
  int token_b = runtime.RegisterJsonSection(
      "beta", [] { return std::string("[1, 2]"); });
  auto sections = runtime.CollectJsonSections();
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].first, "alpha");
  EXPECT_EQ(sections[0].second, "{\"x\": 1}");
  EXPECT_EQ(sections[1].first, "beta");
  EXPECT_EQ(sections[1].second, "[1, 2]");

  runtime.UnregisterJsonSection(token_a);
  sections = runtime.CollectJsonSections();
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].first, "beta");
  // Unregistering twice (or a bogus token) is harmless.
  runtime.UnregisterJsonSection(token_a);
  runtime.UnregisterJsonSection(-5);
  runtime.UnregisterJsonSection(token_b);
  EXPECT_TRUE(runtime.CollectJsonSections().empty());
}

}  // namespace
}  // namespace gpivot
