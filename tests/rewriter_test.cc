// Tests for the pivot-pullup rewriter driver (§3 step 1) and the
// maintenance planner's plan compilation, exercised on the paper's three
// experiment views.
#include "rewrite/rewriter.h"

#include <gtest/gtest.h>

#include "ivm/maintenance.h"
#include "rewrite/rules.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/views.h"

namespace gpivot {
namespace {

using ivm::MaintenancePlan;
using ivm::RefreshStrategy;
using rewrite::PullUpPivots;
using rewrite::RewriteOutcome;
using rewrite::TopShape;
using testing::BagEqualModuloColumnOrder;

class RewriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::Config config;
    config.scale_factor = 0.001;
    config.seed = 11;
    config_ = config;
    ASSERT_OK_AND_ASSIGN(catalog_, tpch::MakeCatalog(tpch::Generate(config)));
  }

  void ExpectEquivalent(const PlanPtr& original, const PlanPtr& rewritten) {
    ASSERT_OK_AND_ASSIGN(Table expected, Evaluate(original, catalog_));
    ASSERT_OK_AND_ASSIGN(Table actual, Evaluate(rewritten, catalog_));
    EXPECT_TRUE(BagEqualModuloColumnOrder(expected, actual));
  }

  tpch::Config config_;
  Catalog catalog_;
};

TEST_F(RewriterTest, View1PivotReachesTop) {
  ASSERT_OK_AND_ASSIGN(PlanPtr view, tpch::View1(catalog_, 7));
  ASSERT_OK_AND_ASSIGN(RewriteOutcome outcome, PullUpPivots(view));
  EXPECT_EQ(outcome.top_shape, TopShape::kGPivotTop);
  EXPECT_EQ(outcome.pivots_pulled, 2);  // through both joins
  ExpectEquivalent(view, outcome.plan);
}

TEST_F(RewriterTest, View2SelectPivotPairReachesTop) {
  ASSERT_OK_AND_ASSIGN(PlanPtr view, tpch::View2(catalog_, 7, 30000.0));
  ASSERT_OK_AND_ASSIGN(RewriteOutcome outcome, PullUpPivots(view));
  EXPECT_EQ(outcome.top_shape, TopShape::kSelectOverGPivotTop);
  ExpectEquivalent(view, outcome.plan);
}

TEST_F(RewriterTest, View3KeepsPivotOverGroupBy) {
  ASSERT_OK_AND_ASSIGN(PlanPtr view,
                       tpch::View3(catalog_, config_.first_year,
                                   config_.num_years));
  ASSERT_OK_AND_ASSIGN(RewriteOutcome outcome, PullUpPivots(view));
  EXPECT_EQ(outcome.top_shape, TopShape::kGPivotOverGroupByTop);
  ExpectEquivalent(view, outcome.plan);
}

TEST_F(RewriterTest, AlreadyTopPivotIsUntouched) {
  ASSERT_OK_AND_ASSIGN(PlanPtr lineitem, MakeScan(catalog_, "lineitem"));
  PivotSpec spec;
  spec.pivot_by = {"linenumber"};
  spec.pivot_on = {"extendedprice"};
  spec.combos = {{Value::Int(1)}, {Value::Int(2)}};
  PlanPtr pivot = MakeGPivot(lineitem, spec);
  ASSERT_OK_AND_ASSIGN(RewriteOutcome outcome, PullUpPivots(pivot));
  EXPECT_EQ(outcome.plan, pivot);
  EXPECT_EQ(outcome.pivots_pulled, 0);
}

TEST_F(RewriterTest, PlanWithoutPivotIsOtherShape) {
  ASSERT_OK_AND_ASSIGN(PlanPtr orders, MakeScan(catalog_, "orders"));
  ASSERT_OK_AND_ASSIGN(PlanPtr customer, MakeScan(catalog_, "customer"));
  PlanPtr join = MakeJoin(orders, customer, {"custkey"});
  ASSERT_OK_AND_ASSIGN(RewriteOutcome outcome, PullUpPivots(join));
  EXPECT_EQ(outcome.top_shape, TopShape::kOther);
}

TEST_F(RewriterTest, RebuildWithChildrenPreservesParameters) {
  ASSERT_OK_AND_ASSIGN(PlanPtr view, tpch::View1(catalog_, 3));
  std::vector<PlanPtr> children = view->children();
  ASSERT_OK_AND_ASSIGN(PlanPtr rebuilt,
                       rewrite::RebuildWithChildren(view, children));
  EXPECT_EQ(rebuilt->kind(), view->kind());
  ASSERT_OK_AND_ASSIGN(Schema original_schema, view->OutputSchema());
  ASSERT_OK_AND_ASSIGN(Schema rebuilt_schema, rebuilt->OutputSchema());
  EXPECT_EQ(original_schema, rebuilt_schema);
}

// ---- Maintenance planner compilation ----------------------------------------

TEST_F(RewriterTest, CompileUpdateForView1) {
  ASSERT_OK_AND_ASSIGN(PlanPtr view, tpch::View1(catalog_, 7));
  ASSERT_OK_AND_ASSIGN(MaintenancePlan plan,
                       MaintenancePlan::Compile(view,
                                                RefreshStrategy::kUpdate));
  EXPECT_EQ(plan.effective_query()->kind(), PlanKind::kGPivot);
}

TEST_F(RewriterTest, CompileCombinedSelectForView2) {
  ASSERT_OK_AND_ASSIGN(PlanPtr view, tpch::View2(catalog_, 7, 30000.0));
  ASSERT_OK_AND_ASSIGN(
      MaintenancePlan plan,
      MaintenancePlan::Compile(view, RefreshStrategy::kCombinedSelect));
  EXPECT_EQ(plan.effective_query()->kind(), PlanKind::kSelect);
}

TEST_F(RewriterTest, CompileCombinedSelectRejectsView1) {
  ASSERT_OK_AND_ASSIGN(PlanPtr view, tpch::View1(catalog_, 7));
  auto plan = MaintenancePlan::Compile(view, RefreshStrategy::kCombinedSelect);
  EXPECT_TRUE(plan.status().IsNotApplicable());
}

TEST_F(RewriterTest, CompileCombinedGroupByRejectsView1) {
  ASSERT_OK_AND_ASSIGN(PlanPtr view, tpch::View1(catalog_, 7));
  auto plan =
      MaintenancePlan::Compile(view, RefreshStrategy::kCombinedGroupBy);
  EXPECT_TRUE(plan.status().IsNotApplicable());
}

TEST_F(RewriterTest, CompileAddsCountStarWhenMissing) {
  // A View-3 variant whose GROUPBY lacks COUNT(*): the planner must inject
  // one (Fig. 28) so deletes are maintainable.
  ASSERT_OK_AND_ASSIGN(PlanPtr lineitem, MakeScan(catalog_, "lineitem"));
  ASSERT_OK_AND_ASSIGN(PlanPtr orders, MakeScan(catalog_, "orders"));
  PlanPtr joined = MakeJoin(lineitem, orders, {"orderkey"});
  PlanPtr aggregated =
      MakeGroupBy(joined, {"custkey", "orderyear"},
                  {AggSpec::Sum("extendedprice", "sum")});
  PivotSpec spec;
  spec.pivot_by = {"orderyear"};
  spec.pivot_on = {"sum"};
  for (int y = 1992; y < 1998; ++y) spec.combos.push_back({Value::Int(y)});
  PlanPtr view = MakeGPivot(aggregated, spec);

  ASSERT_OK_AND_ASSIGN(
      MaintenancePlan plan,
      MaintenancePlan::Compile(view, RefreshStrategy::kCombinedGroupBy));
  ASSERT_OK_AND_ASSIGN(Schema schema, plan.effective_query()->OutputSchema());
  EXPECT_TRUE(schema.HasColumn("1992**cnt_star"));
  // The effective view with the count is a superset of the original's
  // columns.
  ASSERT_OK_AND_ASSIGN(Schema original_schema, view->OutputSchema());
  for (const Column& c : original_schema.columns()) {
    EXPECT_TRUE(schema.HasColumn(c.name)) << c.name;
  }
}

TEST_F(RewriterTest, CompileSelectPushdownForView2) {
  ASSERT_OK_AND_ASSIGN(PlanPtr view, tpch::View2(catalog_, 7, 30000.0));
  ASSERT_OK_AND_ASSIGN(
      MaintenancePlan plan,
      MaintenancePlan::Compile(view,
                               RefreshStrategy::kSelectPushdownUpdate));
  // After Eq. 7 + pullup the pivot tops the plan and the σ is gone from
  // the top (folded into the self-join below).
  EXPECT_EQ(plan.effective_query()->kind(), PlanKind::kGPivot);
  ASSERT_OK_AND_ASSIGN(Table original, Evaluate(view, catalog_));
  ASSERT_OK_AND_ASSIGN(Table effective,
                       Evaluate(plan.effective_query(), catalog_));
  EXPECT_TRUE(BagEqualModuloColumnOrder(original, effective));
}

}  // namespace
}  // namespace gpivot
