// Tests for the TPC-H-like generator and the three experiment views.
#include "tpch/dbgen.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "test_util.h"
#include "tpch/views.h"

namespace gpivot {
namespace {

using testing::I;

tpch::Config SmallConfig() {
  tpch::Config config;
  config.scale_factor = 0.001;
  config.seed = 99;
  return config;
}

TEST(DbgenTest, DeterministicForSeed) {
  tpch::Data a = tpch::Generate(SmallConfig());
  tpch::Data b = tpch::Generate(SmallConfig());
  EXPECT_TRUE(a.lineitem.BagEquals(b.lineitem));
  EXPECT_TRUE(a.orders.BagEquals(b.orders));
  EXPECT_TRUE(a.customer.BagEquals(b.customer));
}

TEST(DbgenTest, DifferentSeedsDiffer) {
  tpch::Config other = SmallConfig();
  other.seed = 100;
  tpch::Data a = tpch::Generate(SmallConfig());
  tpch::Data b = tpch::Generate(other);
  EXPECT_FALSE(a.lineitem.BagEquals(b.lineitem));
}

TEST(DbgenTest, RatiosAndKeys) {
  tpch::Data data = tpch::Generate(SmallConfig());
  EXPECT_EQ(data.customer.num_rows(), 150u);
  EXPECT_EQ(data.orders.num_rows(), 1500u);
  EXPECT_GT(data.lineitem.num_rows(), 1500u);
  ASSERT_OK(data.customer.ValidateKey());
  ASSERT_OK(data.orders.ValidateKey());
  ASSERT_OK(data.lineitem.ValidateKey());
}

TEST(DbgenTest, ForeignKeysResolve) {
  tpch::Data data = tpch::Generate(SmallConfig());
  std::unordered_set<int64_t> custkeys;
  for (const Row& row : data.customer.rows()) {
    custkeys.insert(row[0].AsInt());
  }
  std::unordered_set<int64_t> orderkeys;
  for (const Row& row : data.orders.rows()) {
    orderkeys.insert(row[0].AsInt());
    EXPECT_TRUE(custkeys.count(row[1].AsInt()) > 0);
  }
  for (const Row& row : data.lineitem.rows()) {
    EXPECT_TRUE(orderkeys.count(row[0].AsInt()) > 0);
  }
}

TEST(DbgenTest, LineNumbersWithinPivotRange) {
  tpch::Config config = SmallConfig();
  tpch::Data data = tpch::Generate(config);
  size_t ln = data.lineitem.schema().ColumnIndexOrDie("linenumber");
  for (const Row& row : data.lineitem.rows()) {
    EXPECT_GE(row[ln].AsInt(), 1);
    EXPECT_LE(row[ln].AsInt(), config.max_initial_lines);
  }
}

TEST(DbgenTest, SomeOrdersAreLineless) {
  tpch::Data data = tpch::Generate(SmallConfig());
  std::unordered_set<int64_t> with_lines;
  for (const Row& row : data.lineitem.rows()) {
    with_lines.insert(row[0].AsInt());
  }
  EXPECT_LT(with_lines.size(), data.orders.num_rows());
}

TEST(DeltaGenTest, DeletesComeFromLineitem) {
  tpch::Config config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(Catalog catalog,
                       tpch::MakeCatalog(tpch::Generate(config)));
  ASSERT_OK_AND_ASSIGN(auto deltas,
                       tpch::MakeLineitemDeletes(catalog, 0.05, 1));
  const ivm::Delta& delta = deltas.at("lineitem");
  EXPECT_TRUE(delta.inserts.empty());
  const Table* lineitem = catalog.GetTable("lineitem").value();
  size_t expected = static_cast<size_t>(lineitem->num_rows() * 0.05);
  EXPECT_EQ(delta.deletes.num_rows(), expected);
  // Every delete row exists (would fail application otherwise).
  Table copy = *lineitem;
  ASSERT_OK(ivm::ApplyDeltaToTable(&copy, delta));
}

TEST(DeltaGenTest, UpdateInsertsTargetExistingOrders) {
  tpch::Config config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(Catalog catalog,
                       tpch::MakeCatalog(tpch::Generate(config)));
  ASSERT_OK_AND_ASSIGN(
      auto deltas,
      tpch::MakeLineitemInsertsUpdatesOnly(catalog, config, 0.05, 2));
  const ivm::Delta& delta = deltas.at("lineitem");
  EXPECT_TRUE(delta.deletes.empty());
  EXPECT_GT(delta.inserts.num_rows(), 0u);
  std::unordered_set<int64_t> with_lines;
  const Table* lineitem = catalog.GetTable("lineitem").value();
  for (const Row& row : lineitem->rows()) with_lines.insert(row[0].AsInt());
  for (const Row& row : delta.inserts.rows()) {
    EXPECT_TRUE(with_lines.count(row[0].AsInt()) > 0)
        << "insert for line-less order " << row[0];
    EXPECT_LE(row[1].AsInt(), config.max_line_numbers);
  }
  // The combined table must still satisfy the lineitem key.
  Table copy = *lineitem;
  ASSERT_OK(ivm::ApplyDeltaToTable(&copy, delta));
  ASSERT_OK(copy.ValidateKey());
}

TEST(DeltaGenTest, NewKeyInsertsTargetLinelessOrders) {
  tpch::Config config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(Catalog catalog,
                       tpch::MakeCatalog(tpch::Generate(config)));
  ASSERT_OK_AND_ASSIGN(
      auto deltas,
      tpch::MakeLineitemInsertsNewKeys(catalog, config, 0.03, 3));
  const ivm::Delta& delta = deltas.at("lineitem");
  EXPECT_GT(delta.inserts.num_rows(), 0u);
  std::unordered_set<int64_t> with_lines;
  const Table* lineitem = catalog.GetTable("lineitem").value();
  for (const Row& row : lineitem->rows()) with_lines.insert(row[0].AsInt());
  for (const Row& row : delta.inserts.rows()) {
    EXPECT_TRUE(with_lines.count(row[0].AsInt()) == 0)
        << "insert for order that already has lines " << row[0];
  }
}

TEST(DeltaGenTest, MixedCombinesBoth) {
  tpch::Config config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(Catalog catalog,
                       tpch::MakeCatalog(tpch::Generate(config)));
  ASSERT_OK_AND_ASSIGN(
      auto deltas, tpch::MakeLineitemInsertsMixed(catalog, config, 0.04, 4));
  const ivm::Delta& delta = deltas.at("lineitem");
  EXPECT_GT(delta.inserts.num_rows(), 0u);
  Table copy = *catalog.GetTable("lineitem").value();
  ASSERT_OK(ivm::ApplyDeltaToTable(&copy, delta));
  ASSERT_OK(copy.ValidateKey());
}

TEST(ViewsTest, View1ShapeAndSize) {
  tpch::Config config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(Catalog catalog,
                       tpch::MakeCatalog(tpch::Generate(config)));
  ASSERT_OK_AND_ASSIGN(PlanPtr view,
                       tpch::View1(catalog, config.max_line_numbers));
  ASSERT_OK_AND_ASSIGN(Table result, Evaluate(view, catalog));
  // One row per order with ≥1 line.
  std::unordered_set<int64_t> with_lines;
  const Table* lineitem = catalog.GetTable("lineitem").value();
  for (const Row& row : lineitem->rows()) with_lines.insert(row[0].AsInt());
  EXPECT_EQ(result.num_rows(), with_lines.size());
  ASSERT_OK(result.ValidateKey());
}

TEST(ViewsTest, View2IsFilteredView1) {
  tpch::Config config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(Catalog catalog,
                       tpch::MakeCatalog(tpch::Generate(config)));
  ASSERT_OK_AND_ASSIGN(PlanPtr v1,
                       tpch::View1(catalog, config.max_line_numbers));
  ASSERT_OK_AND_ASSIGN(
      PlanPtr v2, tpch::View2(catalog, config.max_line_numbers, 30000.0));
  ASSERT_OK_AND_ASSIGN(Table r1, Evaluate(v1, catalog));
  ASSERT_OK_AND_ASSIGN(Table r2, Evaluate(v2, catalog));
  EXPECT_LT(r2.num_rows(), r1.num_rows());
  EXPECT_GT(r2.num_rows(), r1.num_rows() / 3);  // ~72% selectivity
  size_t cell = r2.schema().ColumnIndexOrDie("1**extendedprice");
  for (const Row& row : r2.rows()) {
    ASSERT_FALSE(row[cell].is_null());
    EXPECT_GT(row[cell].AsNumeric(), 30000.0);
  }
}

TEST(ViewsTest, View3IsAnAggregateCrosstab) {
  tpch::Config config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(Catalog catalog,
                       tpch::MakeCatalog(tpch::Generate(config)));
  ASSERT_OK_AND_ASSIGN(
      PlanPtr view, tpch::View3(catalog, config.first_year,
                                config.num_years));
  ASSERT_OK_AND_ASSIGN(Table result, Evaluate(view, catalog));
  ASSERT_OK_AND_ASSIGN(Schema schema, view->OutputSchema());
  EXPECT_TRUE(schema.HasColumn("1992**sum"));
  EXPECT_TRUE(schema.HasColumn("1997**cnt"));
  EXPECT_EQ(schema.num_columns(), 2u + 2u * config.num_years);
  EXPECT_GT(result.num_rows(), 0u);
  ASSERT_OK(result.ValidateKey());
}

}  // namespace
}  // namespace gpivot
