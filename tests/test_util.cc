#include "test_util.h"

#include <unordered_map>
#include <unordered_set>

#include "exec/basic_ops.h"
#include "util/string_util.h"

namespace gpivot::testing {

Table MakeTable(std::vector<Column> columns, std::vector<Row> rows) {
  return Table(Schema(std::move(columns)), std::move(rows));
}

namespace {

std::unordered_map<Row, int64_t, RowHash, RowEq> RowCounts(const Table& t) {
  std::unordered_map<Row, int64_t, RowHash, RowEq> counts;
  for (const Row& row : t.rows()) ++counts[row];
  return counts;
}

::testing::AssertionResult CompareRowBags(const Table& expected,
                                          const Table& actual) {
  auto expected_counts = RowCounts(expected);
  auto actual_counts = RowCounts(actual);
  for (const auto& [row, count] : expected_counts) {
    auto it = actual_counts.find(row);
    int64_t have = it == actual_counts.end() ? 0 : it->second;
    if (have != count) {
      return ::testing::AssertionFailure()
             << "row " << RowToString(row) << " expected x" << count
             << " but found x" << have << "\nexpected:\n"
             << expected.Sorted().ToString() << "actual:\n"
             << actual.Sorted().ToString();
    }
  }
  if (actual.num_rows() != expected.num_rows()) {
    return ::testing::AssertionFailure()
           << "row counts differ: expected " << expected.num_rows()
           << ", actual " << actual.num_rows() << "\nexpected:\n"
           << expected.Sorted().ToString() << "actual:\n"
           << actual.Sorted().ToString();
  }
  return ::testing::AssertionSuccess();
}

}  // namespace

::testing::AssertionResult BagEqualModuloColumnOrder(const Table& expected,
                                                     const Table& actual) {
  std::vector<std::string> expected_names = expected.schema().ColumnNames();
  for (const std::string& name : expected_names) {
    if (!actual.schema().HasColumn(name)) {
      return ::testing::AssertionFailure()
             << "actual is missing column '" << name << "'; actual schema "
             << actual.schema().ToString();
    }
  }
  if (actual.schema().num_columns() != expected.schema().num_columns()) {
    return ::testing::AssertionFailure()
           << "column counts differ: expected "
           << expected.schema().ToString() << ", actual "
           << actual.schema().ToString();
  }
  auto aligned = exec::Project(actual, expected_names);
  if (!aligned.ok()) {
    return ::testing::AssertionFailure() << aligned.status().ToString();
  }
  return CompareRowBags(expected, *aligned);
}

::testing::AssertionResult BagEqual(const Table& expected,
                                    const Table& actual) {
  if (expected.schema() != actual.schema()) {
    return ::testing::AssertionFailure()
           << "schemas differ: expected " << expected.schema().ToString()
           << ", actual " << actual.schema().ToString();
  }
  return CompareRowBags(expected, actual);
}

Table RandomVerticalTable(const RandomVerticalSpec& spec, Rng* rng) {
  std::vector<Column> columns = {{"k", DataType::kInt64}};
  for (size_t d = 0; d < spec.num_dims; ++d) {
    columns.push_back({StrCat("a", d + 1), DataType::kString});
  }
  for (size_t b = 0; b < spec.num_measures; ++b) {
    columns.push_back({StrCat("b", b + 1), DataType::kInt64});
  }
  Table table{Schema(columns)};

  std::unordered_set<Row, RowHash, RowEq> used_keys;
  size_t attempts = 0;
  while (table.num_rows() < spec.num_rows &&
         attempts < spec.num_rows * 20) {
    ++attempts;
    Row row;
    row.push_back(Value::Int(rng->Int(1, spec.num_keys)));
    for (size_t d = 0; d < spec.num_dims; ++d) {
      row.push_back(
          Value::Str(StrCat("v", rng->Int(0, spec.dim_alphabet - 1))));
    }
    // (k, dims) must form a key.
    Row key(row.begin(), row.begin() + 1 + spec.num_dims);
    if (!used_keys.insert(std::move(key)).second) continue;
    for (size_t b = 0; b < spec.num_measures; ++b) {
      row.push_back(rng->Chance(spec.null_fraction)
                        ? Value::Null()
                        : Value::Int(rng->Int(0, 999)));
    }
    table.AddRow(std::move(row));
  }
  std::vector<std::string> key_columns = {"k"};
  for (size_t d = 0; d < spec.num_dims; ++d) {
    key_columns.push_back(StrCat("a", d + 1));
  }
  Status st = table.SetKey(key_columns);
  (void)st;
  return table;
}

}  // namespace gpivot::testing
