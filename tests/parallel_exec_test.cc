// Determinism tests for the parallel maintenance executor. The contract
// under test: every parallel code path — GPivotParallel partitions,
// HashJoin's chunked probe, GroupBy's key-partitioned accumulation, and
// ViewManager's concurrent staging — produces output byte-identical
// (position-sensitive row equality, not just bag equality) to the
// sequential run, for every thread count. Plus: a mid-epoch fault under a
// parallel context must roll the manager back byte-identically, exactly as
// the sequential fault sweep guarantees.
#include <gtest/gtest.h>

#include <atomic>

#include "core/gpivot.h"
#include "core/parallel.h"
#include "exec/group_by.h"
#include "exec/join.h"
#include "ivm/view_manager.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/views.h"
#include "util/fault_injection.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace gpivot {
namespace {

using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;
using testing::BagEqual;
using testing::D;
using testing::I;
using testing::MakeTable;
using testing::N;
using testing::RandomVerticalSpec;
using testing::RandomVerticalTable;
using testing::S;

// min_parallel_rows = 1 forces the parallel paths onto the small tables
// tests use; production defaults would keep them sequential.
ExecContext Par(size_t threads) { return ExecContext{threads, 1}; }

const size_t kThreadCounts[] = {2, 4, 7};

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(Par(4), hits.size(),
              [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NestedInvocationRunsInline) {
  // A parallel loop whose body starts another parallel loop must not
  // deadlock (inner loops run inline on pool workers).
  std::atomic<size_t> total{0};
  ParallelFor(Par(4), 8, [&](size_t) {
    ParallelFor(Par(4), 8,
                [&](size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ParallelForChunksTest, ChunksPartitionTheRange) {
  const size_t n = 103;
  ExecContext ctx = Par(4);
  std::vector<int> covered(n, 0);
  std::atomic<size_t> chunks_seen{0};
  ParallelForChunks(ctx, n, [&](size_t chunk, size_t begin, size_t end) {
    (void)chunk;
    for (size_t i = begin; i < end; ++i) covered[i]++;
    chunks_seen.fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(covered[i], 1) << "index " << i;
  EXPECT_EQ(NumChunks(ctx, n), 4u);
}

// Join inputs engineered to exercise the interesting cases: duplicate build
// keys (one probe row fans out), NULL keys on both sides (never match), and
// unmatched rows on both sides (outer/semi/anti paths).
Table JoinLeft(size_t rows) {
  Table t(Schema({{"k", DataType::kInt64},
                  {"tag", DataType::kString},
                  {"lv", DataType::kInt64}}));
  for (size_t i = 0; i < rows; ++i) {
    Value key = i % 11 == 0 ? N() : I(static_cast<int64_t>(i % 17));
    t.AddRow({key, S(i % 2 == 0 ? "even" : "odd"),
              I(static_cast<int64_t>(i))});
  }
  return t;
}

Table JoinRight(size_t rows) {
  Table t(Schema({{"k", DataType::kInt64}, {"rv", DataType::kInt64}}));
  for (size_t i = 0; i < rows; ++i) {
    Value key = i % 13 == 0 ? N() : I(static_cast<int64_t>(i % 23));
    t.AddRow({key, I(static_cast<int64_t>(1000 + i))});
  }
  return t;
}

class HashJoinDeterminismTest
    : public ::testing::TestWithParam<exec::JoinType> {};

TEST_P(HashJoinDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  exec::JoinSpec spec;
  spec.left_keys = {"k"};
  spec.right_keys = {"k"};
  spec.type = GetParam();
  // Both probe directions: left smaller (inner's build-left branch) and
  // left larger (the general build-right branch).
  for (auto [left_rows, right_rows] : {std::pair<size_t, size_t>{80, 200},
                                       std::pair<size_t, size_t>{200, 80}}) {
    Table left = JoinLeft(left_rows);
    Table right = JoinRight(right_rows);
    ASSERT_OK_AND_ASSIGN(Table sequential, exec::HashJoin(left, right, spec));
    for (size_t threads : kThreadCounts) {
      ASSERT_OK_AND_ASSIGN(Table parallel,
                           exec::HashJoin(left, right, spec, Par(threads)));
      EXPECT_EQ(sequential.schema(), parallel.schema());
      EXPECT_EQ(sequential.rows(), parallel.rows())
          << exec::JoinTypeToString(GetParam()) << " with " << threads
          << " threads, " << left_rows << "x" << right_rows
          << ": rows differ from sequential";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, HashJoinDeterminismTest,
    ::testing::Values(exec::JoinType::kInner, exec::JoinType::kLeftOuter,
                      exec::JoinType::kFullOuter, exec::JoinType::kLeftSemi,
                      exec::JoinType::kLeftAnti),
    [](const ::testing::TestParamInfo<exec::JoinType>& info) {
      switch (info.param) {
        case exec::JoinType::kInner: return "Inner";
        case exec::JoinType::kLeftOuter: return "LeftOuter";
        case exec::JoinType::kFullOuter: return "FullOuter";
        case exec::JoinType::kLeftSemi: return "LeftSemi";
        case exec::JoinType::kLeftAnti: return "LeftAnti";
      }
      return "?";
    });

TEST(GroupByDeterminismTest, FloatSumsBitIdenticalAcrossThreadCounts) {
  // Doubles whose sum depends on addition order: if the parallel path
  // chunked rows instead of partitioning groups by key, these sums would
  // differ in the low bits across thread counts.
  Table input(Schema({{"g", DataType::kInt64},
                      {"x", DataType::kDouble},
                      {"n", DataType::kInt64}}));
  for (size_t i = 0; i < 500; ++i) {
    input.AddRow({I(static_cast<int64_t>(i % 29)),
                  D(0.1 * static_cast<double>(i) + 1e-9 * (i % 7)),
                  i % 19 == 0 ? N() : I(static_cast<int64_t>(i))});
  }
  std::vector<AggSpec> aggs = {{AggFunc::kSum, "x", "sx"},
                               {AggFunc::kCount, "n", "cn"},
                               {AggFunc::kMin, "x", "mx"},
                               {AggFunc::kCountStar, "", "all"}};
  ASSERT_OK_AND_ASSIGN(Table sequential, exec::GroupBy(input, {"g"}, aggs));
  for (size_t threads : kThreadCounts) {
    ASSERT_OK_AND_ASSIGN(Table parallel,
                         exec::GroupBy(input, {"g"}, aggs, Par(threads)));
    EXPECT_EQ(sequential.schema(), parallel.schema());
    EXPECT_EQ(sequential.rows(), parallel.rows())
        << threads << " threads: group rows differ from sequential "
        << "(first-appearance order or float sums broke)";
  }
}

TEST(GroupByDeterminismTest, NullGroupKeysAndThreadsExceedingGroups) {
  Table input(Schema({{"g", DataType::kInt64}, {"x", DataType::kInt64}}));
  for (size_t i = 0; i < 40; ++i) {
    input.AddRow({i % 5 == 0 ? N() : I(static_cast<int64_t>(i % 3)),
                  I(static_cast<int64_t>(i))});
  }
  std::vector<AggSpec> aggs = {{AggFunc::kSum, "x", "sx"}};
  ASSERT_OK_AND_ASSIGN(Table sequential, exec::GroupBy(input, {"g"}, aggs));
  // 7 threads, only 4 distinct groups: some partitions own nothing.
  ASSERT_OK_AND_ASSIGN(Table parallel,
                       exec::GroupBy(input, {"g"}, aggs, Par(7)));
  EXPECT_EQ(sequential.rows(), parallel.rows());
}

TEST(GPivotParallelDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  // Round-robin partitioning scatters every key across all partitions (the
  // hard case: each partition carries a partial row per key, and the merge
  // must interleave them deterministically).
  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    RandomVerticalSpec vspec;
    vspec.num_rows = 90;
    vspec.num_dims = 1;
    vspec.num_measures = 2;
    Table input = RandomVerticalTable(vspec, &rng);
    PivotSpec spec;
    spec.pivot_by = {"a1"};
    spec.pivot_on = {"b1", "b2"};
    spec.combos = {{S("v0")}, {S("v1")}, {S("v2")}};
    ASSERT_OK_AND_ASSIGN(Table sequential, GPivotParallel(input, spec, 5));
    ASSERT_OK_AND_ASSIGN(Table plain, GPivot(input, spec));
    EXPECT_TRUE(BagEqual(plain, sequential));
    for (size_t threads : kThreadCounts) {
      ASSERT_OK_AND_ASSIGN(Table parallel,
                           GPivotParallel(input, spec, 5, Par(threads)));
      EXPECT_EQ(sequential.rows(), parallel.rows())
          << "trial " << trial << ", " << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the three experiment views, refreshed under every thread
// count, must leave every view and base table byte-identical to the
// sequential manager's state.

tpch::Config SmallConfig() {
  tpch::Config config;
  config.scale_factor = 0.001;
  config.seed = 11;
  return config;
}

ViewManager MakeThreeViewManager(const tpch::Config& config,
                                 const ExecContext& ctx) {
  Catalog catalog = tpch::MakeCatalog(tpch::Generate(config)).value();
  PlanPtr v1 = tpch::View1(catalog, config.max_line_numbers).value();
  PlanPtr v2 = tpch::View2(catalog, config.max_line_numbers, 30000.0).value();
  PlanPtr v3 =
      tpch::View3(catalog, config.first_year, config.num_years).value();
  ViewManager manager(std::move(catalog));
  manager.set_exec_context(ctx);
  EXPECT_TRUE(manager.DefineView("v1", v1, RefreshStrategy::kUpdate).ok());
  EXPECT_TRUE(
      manager.DefineView("v2", v2, RefreshStrategy::kCombinedSelect).ok());
  EXPECT_TRUE(
      manager.DefineView("v3", v3, RefreshStrategy::kCombinedGroupBy).ok());
  return manager;
}

// Position-sensitive comparison of every base table and view across two
// managers: parallelism must not even reorder rows.
void ExpectManagersIdentical(const ViewManager& expected,
                             const ViewManager& actual, size_t threads) {
  for (const std::string& name : expected.catalog().TableNames()) {
    EXPECT_EQ(expected.catalog().GetTable(name).value()->rows(),
              actual.catalog().GetTable(name).value()->rows())
        << "base table '" << name << "' differs at " << threads << " threads";
  }
  for (const char* name : {"v1", "v2", "v3"}) {
    EXPECT_EQ(expected.GetView(name).value()->table().rows(),
              actual.GetView(name).value()->table().rows())
        << "view '" << name << "' differs at " << threads << " threads";
  }
}

enum class EpochWorkload { kDelete, kInsertMixed };

SourceDeltas MakeEpochDeltas(const ViewManager& manager,
                             const tpch::Config& config, EpochWorkload kind) {
  switch (kind) {
    case EpochWorkload::kDelete:
      return tpch::MakeLineitemDeletes(manager.catalog(), 0.05, 42).value();
    case EpochWorkload::kInsertMixed:
      return tpch::MakeLineitemInsertsMixed(manager.catalog(), config, 0.05,
                                            42)
          .value();
  }
  return {};
}

class EpochDeterminismTest : public ::testing::TestWithParam<EpochWorkload> {};

TEST_P(EpochDeterminismTest, ThreeViewsByteIdenticalAcrossThreadCounts) {
  tpch::Config config = SmallConfig();
  ViewManager reference = MakeThreeViewManager(config, ExecContext{});
  SourceDeltas deltas = MakeEpochDeltas(reference, config, GetParam());
  ASSERT_OK(reference.ApplyUpdate(deltas));
  ASSERT_OK(reference.Audit());
  for (size_t threads : kThreadCounts) {
    // Fresh manager from the same generator seed: identical initial state,
    // so the deltas (computed against the reference) apply verbatim.
    ViewManager manager = MakeThreeViewManager(config, Par(threads));
    ASSERT_OK(manager.ApplyUpdate(deltas));
    ExpectManagersIdentical(reference, manager, threads);
    ASSERT_OK(manager.Audit());
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, EpochDeterminismTest,
                         ::testing::Values(EpochWorkload::kDelete,
                                           EpochWorkload::kInsertMixed),
                         [](const ::testing::TestParamInfo<EpochWorkload>& i) {
                           return i.param == EpochWorkload::kDelete
                                      ? "Delete"
                                      : "InsertMixed";
                         });

// Fault sweep under a 4-thread executor: whichever staging task or commit
// step the armed fault lands in (the n-th poke may fall in a different
// stage task run-to-run once staging is concurrent), the epoch must roll
// back byte-identically — same contract the sequential sweep in
// apply_errors_test.cc enforces.
TEST(ParallelEpochFaultTest, MidEpochFaultAtFourThreadsRollsBackExactly) {
  tpch::Config config = SmallConfig();
  ViewManager manager = MakeThreeViewManager(config, Par(4));
  SourceDeltas deltas = MakeEpochDeltas(manager, config, EpochWorkload::kDelete);

  std::vector<std::pair<std::string, std::vector<Row>>> before;
  for (const std::string& name : manager.catalog().TableNames()) {
    before.emplace_back(name,
                        manager.catalog().GetTable(name).value()->rows());
  }
  for (const char* name : {"v1", "v2", "v3"}) {
    before.emplace_back(name, manager.GetView(name).value()->table().rows());
  }
  auto expect_rolled_back = [&](size_t n) {
    for (const auto& [name, rows] : before) {
      auto table = manager.catalog().GetTable(name);
      const std::vector<Row>& now = table.ok()
                                        ? (*table)->rows()
                                        : manager.GetView(name)
                                              .value()
                                              ->table()
                                              .rows();
      EXPECT_EQ(rows, now) << "'" << name
                           << "' not byte-identical after rollback at point #"
                           << n;
    }
  };

  FaultInjector& injector = FaultInjector::Global();
  size_t points_hit = 0;
  for (size_t n = 1;; ++n) {
    injector.Arm(n);
    Status st = manager.ApplyUpdate(deltas);
    bool fired = injector.fired();
    injector.Disarm();
    if (st.ok()) {
      EXPECT_FALSE(fired);
      break;
    }
    ASSERT_TRUE(fired) << "non-injected failure at n=" << n << ": "
                       << st.ToString();
    EXPECT_NE(st.message().find("injected fault"), std::string::npos)
        << st.ToString();
    points_hit = n;
    expect_rolled_back(n);
    ASSERT_OK(manager.Audit());
  }
  EXPECT_GE(points_hit, 6u) << "fault sweep covered suspiciously few points";
  ASSERT_OK(manager.Audit());
}

}  // namespace
}  // namespace gpivot
