// Sharded-maintenance determinism and fault tolerance. The contract under
// test: a maintenance epoch whose stage AND commit run per-shard in
// parallel (ShardingOptions, GPIVOT_SHARDS) must leave every observable
// artifact byte-identical to the serial single-shard path — view rows,
// base tables, ExecContext-carried counters, EXPLAIN ANALYZE renderings,
// and the epoch JSONL — for every shard count × thread count combination.
// Plus: a fault injected at any per-shard stage or commit site must roll
// the manager back byte-identically (per-shard undo logs replay in reverse
// commit order within each shard), exactly as the serial sweep guarantees.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ivm/batcher.h"
#include "ivm/view_manager.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/views.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace gpivot {
namespace {

using ivm::RefreshStrategy;
using ivm::ShardingOptions;
using ivm::SourceDeltas;
using ivm::ViewManager;

tpch::Config SmallConfig() {
  tpch::Config config;
  config.scale_factor = 0.001;
  config.seed = 11;
  return config;
}

ViewManager MakeThreeViewManager(const tpch::Config& config,
                                 const ExecContext& ctx,
                                 size_t num_shards) {
  Catalog catalog = tpch::MakeCatalog(tpch::Generate(config)).value();
  PlanPtr v1 = tpch::View1(catalog, config.max_line_numbers).value();
  PlanPtr v2 = tpch::View2(catalog, config.max_line_numbers, 30000.0).value();
  PlanPtr v3 =
      tpch::View3(catalog, config.first_year, config.num_years).value();
  ViewManager manager(std::move(catalog));
  manager.set_exec_context(ctx);
  ShardingOptions sharding;
  sharding.num_shards = num_shards;
  manager.set_sharding(sharding);
  EXPECT_TRUE(manager.DefineView("v1", v1, RefreshStrategy::kUpdate).ok());
  EXPECT_TRUE(
      manager.DefineView("v2", v2, RefreshStrategy::kCombinedSelect).ok());
  EXPECT_TRUE(
      manager.DefineView("v3", v3, RefreshStrategy::kCombinedGroupBy).ok());
  return manager;
}

// Everything a sharded epoch is allowed to affect, captured as comparable
// bytes. Counters come from a per-run registry carried by the ExecContext:
// the work-stealing executor's own noise (thread_pool.run_sharded.*) goes
// to the global registry only, so this snapshot must be a pure function of
// the workload.
struct EpochArtifacts {
  std::map<std::string, std::vector<Row>> view_rows;
  std::map<std::string, size_t> base_rows;
  std::map<std::string, uint64_t> counters;
  std::string explain_json;
  std::string explain_text;
  std::string event_log_bytes;
};

EpochArtifacts RunShardedEpoch(size_t num_shards, size_t threads) {
  std::string log_path = ::testing::TempDir() + "/gpivot_shard_det_" +
                         std::to_string(num_shards) + "_" +
                         std::to_string(threads) + ".jsonl";
  std::remove(log_path.c_str());
  obs::EventLog log(log_path);
  EXPECT_TRUE(log.ok()) << log.error();
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  ExecContext ctx;
  ctx.num_threads = threads;
  ctx.min_parallel_rows = 1;  // force parallel paths on the tiny tables
  ctx.metrics = &registry;
  tpch::Config config = SmallConfig();
  ViewManager manager = MakeThreeViewManager(config, ctx, num_shards);
  manager.set_event_log(&log);
  SourceDeltas deltas =
      tpch::MakeLineitemInsertsMixed(manager.catalog(), config, 0.05, 42)
          .value();
  registry.Reset();
  EXPECT_TRUE(manager.ApplyUpdate(deltas).ok());
  EXPECT_TRUE(manager.Audit().ok());
  EpochArtifacts artifacts;
  artifacts.counters = registry.Snapshot().counters;
  for (const std::string& name : manager.catalog().TableNames()) {
    artifacts.base_rows[name] =
        manager.catalog().GetTable(name).value()->num_rows();
  }
  for (const char* name : {"v1", "v2", "v3"}) {
    artifacts.view_rows[name] = manager.GetView(name).value()->table().rows();
    CostReport report = manager.ExplainAnalyze(name).value();
    artifacts.explain_json += report.ToJsonLine() + "\n";
    artifacts.explain_text += report.ToText();
  }
  std::ifstream in(log_path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  artifacts.event_log_bytes = buffer.str();
  std::remove(log_path.c_str());
  return artifacts;
}

TEST(ShardedMaintenanceTest, ArtifactsByteIdenticalAcrossShardCounts) {
  EpochArtifacts reference = RunShardedEpoch(/*num_shards=*/1, /*threads=*/1);
  ASSERT_FALSE(reference.counters.empty());
  ASSERT_EQ(reference.counters.count("ivm.merge.updates"), 1u);
  ASSERT_NE(reference.event_log_bytes.find("\"outcome\": \"committed\""),
            std::string::npos)
      << reference.event_log_bytes;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      if (shards == 1 && threads == 1) continue;  // the reference itself
      EpochArtifacts other = RunShardedEpoch(shards, threads);
      EXPECT_EQ(reference.view_rows, other.view_rows)
          << "view rows depend on sharding (shards=" << shards
          << ", threads=" << threads << ")";
      EXPECT_EQ(reference.base_rows, other.base_rows)
          << "base tables depend on sharding (shards=" << shards
          << ", threads=" << threads << ")";
      EXPECT_EQ(reference.counters, other.counters)
          << "counters depend on sharding (shards=" << shards
          << ", threads=" << threads << ")";
      EXPECT_EQ(reference.explain_json, other.explain_json)
          << "EXPLAIN JSON depends on sharding (shards=" << shards
          << ", threads=" << threads << ")";
      EXPECT_EQ(reference.explain_text, other.explain_text);
      EXPECT_EQ(reference.event_log_bytes, other.event_log_bytes)
          << "epoch JSONL depends on sharding (shards=" << shards
          << ", threads=" << threads << ")";
    }
  }
}

// A batched flush through the heavy/light classifier must net to the same
// refreshed views as the uniform single-shard path. Shard count and thread
// count are pure scheduling and must be byte-invisible (position-sensitive
// row equality). The classifier threshold legitimately changes the net
// delta's *emission order* (heavy rows emit after the general bag), so
// across thresholds the committed views are bag-equal, and within one
// threshold they are byte-identical at every shard/thread combination.
TEST(ShardedMaintenanceTest, ZipfChurnFlushIdenticalAcrossConfigs) {
  tpch::Config config = SmallConfig();
  auto run = [&](size_t num_shards, size_t threshold, size_t threads) {
    ExecContext ctx;
    ctx.num_threads = threads;
    ctx.min_parallel_rows = 1;
    ViewManager manager = MakeThreeViewManager(config, ctx, num_shards);
    auto batches = tpch::MakeLineitemZipfChurn(manager.catalog(),
                                               /*num_batches=*/6,
                                               /*rows_per_batch=*/40,
                                               /*theta=*/1.1, /*seed=*/42);
    EXPECT_TRUE(batches.ok()) << batches.status().ToString();
    ivm::BatcherOptions options;
    options.heavy_key_threshold = threshold;
    ivm::DeltaBatcher batcher(&manager, options);
    for (const SourceDeltas& batch : *batches) {
      EXPECT_TRUE(batcher.Ingest(batch).ok());
    }
    EXPECT_TRUE(batcher.Flush().ok());
    EXPECT_TRUE(manager.Audit().ok());
    std::map<std::string, Table> views;
    for (const char* name : {"v1", "v2", "v3"}) {
      views.emplace(name, manager.GetView(name).value()->table());
    }
    return views;
  };
  auto expect_byte_identical = [](const std::map<std::string, Table>& want,
                                  const std::map<std::string, Table>& got,
                                  size_t shards, size_t threshold,
                                  size_t threads) {
    for (const auto& [name, table] : want) {
      EXPECT_EQ(table.rows(), got.at(name).rows())
          << "view '" << name << "' depends on scheduling (shards=" << shards
          << ", threshold=" << threshold << ", threads=" << threads << ")";
    }
  };
  auto uniform = run(/*num_shards=*/1, /*threshold=*/0, /*threads=*/1);
  ASSERT_GT(uniform.at("v1").num_rows(), 0u);
  auto classified = run(/*num_shards=*/1, /*threshold=*/2, /*threads=*/1);
  // Across thresholds: same committed bag, order free.
  for (const auto& [name, table] : uniform) {
    EXPECT_TRUE(testing::BagEqual(table, classified.at(name)))
        << "view '" << name << "' net diverged under the classifier";
  }
  // Within each threshold: shard count and threads are byte-invisible.
  for (size_t shards : {size_t{2}, size_t{4}, size_t{7}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      expect_byte_identical(uniform, run(shards, 0, threads), shards, 0,
                            threads);
      expect_byte_identical(classified, run(shards, 2, threads), shards, 2,
                            threads);
    }
  }
}

// Fault sweep at 4 shards × 4 threads: arm the n-th fault poke for
// escalating n until an epoch survives. The armed poke may land in any
// per-shard stage task, the per-shard commit site
// ("ExecuteMergePlan::shard-commit"), the structural tail
// ("ExecuteMergePlan::structural-commit"), or a cross-view boundary — in
// every case the epoch must report the injected fault and restore every
// base table and view byte-for-byte.
TEST(ShardedMaintenanceTest, FaultSweepRollsBackExactlyAtEveryShardSite) {
  tpch::Config config = SmallConfig();
  ExecContext ctx;
  ctx.num_threads = 4;
  ctx.min_parallel_rows = 1;
  ViewManager manager = MakeThreeViewManager(config, ctx, /*num_shards=*/4);
  SourceDeltas deltas =
      tpch::MakeLineitemDeletes(manager.catalog(), 0.05, 42).value();

  std::vector<std::pair<std::string, std::vector<Row>>> before;
  for (const std::string& name : manager.catalog().TableNames()) {
    before.emplace_back(name,
                        manager.catalog().GetTable(name).value()->rows());
  }
  for (const char* name : {"v1", "v2", "v3"}) {
    before.emplace_back(name, manager.GetView(name).value()->table().rows());
  }
  auto expect_rolled_back = [&](size_t n) {
    for (const auto& [name, rows] : before) {
      auto table = manager.catalog().GetTable(name);
      const std::vector<Row>& now =
          table.ok() ? (*table)->rows()
                     : manager.GetView(name).value()->table().rows();
      EXPECT_EQ(rows, now) << "'" << name
                           << "' not byte-identical after rollback at point #"
                           << n;
    }
  };

  FaultInjector& injector = FaultInjector::Global();
  size_t points_hit = 0;
  for (size_t n = 1;; ++n) {
    injector.Arm(n);
    Status st = manager.ApplyUpdate(deltas);
    bool fired = injector.fired();
    injector.Disarm();
    if (st.ok()) {
      EXPECT_FALSE(fired);
      break;
    }
    ASSERT_TRUE(fired) << "non-injected failure at n=" << n << ": "
                       << st.ToString();
    EXPECT_NE(st.message().find("injected fault"), std::string::npos)
        << st.ToString();
    points_hit = n;
    expect_rolled_back(n);
    ASSERT_OK(manager.Audit());
  }
  EXPECT_GE(points_hit, 6u) << "fault sweep covered suspiciously few points";
  ASSERT_OK(manager.Audit());

  // After the sweep the committed state must match a clean serial apply.
  ViewManager serial = MakeThreeViewManager(config, ExecContext{}, 1);
  ASSERT_OK(serial.ApplyUpdate(deltas));
  for (const char* name : {"v1", "v2", "v3"}) {
    EXPECT_EQ(serial.GetView(name).value()->table().rows(),
              manager.GetView(name).value()->table().rows())
        << "post-sweep commit of '" << name << "' differs from serial";
  }
}

TEST(ShardedMaintenanceTest, ShardingOptionsFromEnvStrictParse) {
  ::unsetenv("GPIVOT_SHARDS");
  auto unset = ShardingOptions::FromEnv();
  ASSERT_TRUE(unset.ok());
  EXPECT_EQ(unset->num_shards, 1u);

  ::setenv("GPIVOT_SHARDS", "7", 1);
  auto seven = ShardingOptions::FromEnv();
  ASSERT_TRUE(seven.ok());
  EXPECT_EQ(seven->num_shards, 7u);

  for (const char* bad : {"0", "4x", "-1", "3.5"}) {
    ::setenv("GPIVOT_SHARDS", bad, 1);
    EXPECT_FALSE(ShardingOptions::FromEnv().ok())
        << "'" << bad << "' must be rejected, not silently defaulted";
  }
  ::unsetenv("GPIVOT_SHARDS");
}

}  // namespace
}  // namespace gpivot
