#include "util/string_util.h"
// Differential testing of expression compilation: random expression trees
// are evaluated both by the compiled evaluator (CompileExpr) and by an
// independent recursive reference interpreter; the two must agree on random
// rows, including NULL-heavy ones (three-valued logic).
#include <gtest/gtest.h>

#include "expr/expr.h"
#include "test_util.h"
#include "util/random.h"

namespace gpivot {
namespace {

using testing::I;

const Schema& TestSchema() {
  static const Schema* const kSchema = new Schema(
      {{"c0", DataType::kInt64}, {"c1", DataType::kInt64},
       {"c2", DataType::kInt64}, {"c3", DataType::kInt64}});
  return *kSchema;
}

// Random expression tree over int columns/literals. Depth-bounded.
ExprPtr RandomExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->Chance(0.3)) {
    if (rng->Chance(0.5)) {
      return Col(StrCat("c", rng->Int(0, 3)));
    }
    return Lit(Value::Int(rng->Int(-5, 5)));
  }
  switch (rng->Int(0, 6)) {
    case 0: {
      static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                       CompareOp::kLt, CompareOp::kLe,
                                       CompareOp::kGt, CompareOp::kGe};
      return Cmp(kOps[rng->Int(0, 5)], RandomExpr(rng, depth - 1),
                 RandomExpr(rng, depth - 1));
    }
    case 1:
      return And(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 2:
      return Or(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 3:
      return Not(RandomExpr(rng, depth - 1));
    case 4:
      return rng->Chance(0.5) ? IsNull(RandomExpr(rng, depth - 1))
                              : IsNotNull(RandomExpr(rng, depth - 1));
    case 5: {
      switch (rng->Int(0, 3)) {
        case 0:
          return Add(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
        case 1:
          return Sub(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
        case 2:
          return Mul(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
        default:
          return Div(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
      }
    }
    default:
      return Case(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1),
                  RandomExpr(rng, depth - 1));
  }
}

// Independent reference interpreter (deliberately written differently from
// CompileExpr: direct recursion, no closures).
Value Interpret(const ExprPtr& e, const Row& row) {
  switch (e->kind()) {
    case ExprKind::kColumnRef: {
      const auto* ref = static_cast<const ColumnRefExpr*>(e.get());
      return row[TestSchema().ColumnIndexOrDie(ref->name())];
    }
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr*>(e.get())->value();
    case ExprKind::kComparison: {
      const auto* c = static_cast<const ComparisonExpr*>(e.get());
      Value l = Interpret(c->left(), row);
      Value r = Interpret(c->right(), row);
      if (l.is_null() || r.is_null()) return Value::Null();
      bool lt = l < r, eq = l == r;
      bool result = false;
      switch (c->op()) {
        case CompareOp::kEq: result = eq; break;
        case CompareOp::kNe: result = !eq; break;
        case CompareOp::kLt: result = lt; break;
        case CompareOp::kLe: result = lt || eq; break;
        case CompareOp::kGt: result = !lt && !eq; break;
        case CompareOp::kGe: result = !lt; break;
      }
      return Value::Int(result ? 1 : 0);
    }
    case ExprKind::kBoolOp: {
      const auto* b = static_cast<const BoolOpExpr*>(e.get());
      // Kleene three-valued AND/OR evaluated via min/max over {F=0, U, T=1}.
      bool is_and = b->op() == BoolOpKind::kAnd;
      bool saw_null = false;
      for (const ExprPtr& op : b->operands()) {
        Value v = Interpret(op, row);
        if (v.is_null()) {
          saw_null = true;
        } else if (ValueIsTrue(v) != is_and) {
          // OR hit TRUE, or AND hit FALSE: decided.
          return Value::Int(is_and ? 0 : 1);
        }
      }
      if (saw_null) return Value::Null();
      return Value::Int(is_and ? 1 : 0);
    }
    case ExprKind::kNot: {
      Value v = Interpret(static_cast<const NotExpr*>(e.get())->operand(),
                          row);
      if (v.is_null()) return Value::Null();
      return Value::Int(ValueIsTrue(v) ? 0 : 1);
    }
    case ExprKind::kIsNull: {
      const auto* n = static_cast<const IsNullExpr*>(e.get());
      bool is_null = Interpret(n->operand(), row).is_null();
      return Value::Int((is_null != n->negated()) ? 1 : 0);
    }
    case ExprKind::kArith: {
      const auto* a = static_cast<const ArithExpr*>(e.get());
      Value l = Interpret(a->left(), row);
      Value r = Interpret(a->right(), row);
      if (l.is_null() || r.is_null()) return Value::Null();
      if (l.is_int() && r.is_int() && a->op() != ArithOp::kDiv) {
        int64_t x = l.AsInt(), y = r.AsInt();
        switch (a->op()) {
          case ArithOp::kAdd: return Value::Int(x + y);
          case ArithOp::kSub: return Value::Int(x - y);
          case ArithOp::kMul: return Value::Int(x * y);
          default: break;
        }
      }
      double x = l.AsNumeric(), y = r.AsNumeric();
      switch (a->op()) {
        case ArithOp::kAdd: return Value::Real(x + y);
        case ArithOp::kSub: return Value::Real(x - y);
        case ArithOp::kMul: return Value::Real(x * y);
        case ArithOp::kDiv:
          if (y == 0) return Value::Null();
          return Value::Real(x / y);
      }
      return Value::Null();
    }
    case ExprKind::kCase: {
      const auto* c = static_cast<const CaseExpr*>(e.get());
      return ValueIsTrue(Interpret(c->condition(), row))
                 ? Interpret(c->then_value(), row)
                 : Interpret(c->else_value(), row);
    }
  }
  return Value::Null();
}

class ExprDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprDifferentialTest, CompiledMatchesInterpreter) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  for (int trial = 0; trial < 40; ++trial) {
    ExprPtr expr = RandomExpr(&rng, 4);
    auto compiled = CompileExpr(expr, TestSchema());
    ASSERT_TRUE(compiled.ok()) << expr->ToString();
    for (int sample = 0; sample < 10; ++sample) {
      Row row;
      for (int c = 0; c < 4; ++c) {
        row.push_back(rng.Chance(0.3) ? Value::Null()
                                      : Value::Int(rng.Int(-5, 5)));
      }
      Value fast = (*compiled)(row);
      Value slow = Interpret(expr, row);
      ASSERT_EQ(fast.is_null(), slow.is_null())
          << expr->ToString() << " on " << RowToString(row);
      if (!fast.is_null()) {
        ASSERT_EQ(fast, slow)
            << expr->ToString() << " on " << RowToString(row);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprDifferentialTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace gpivot
