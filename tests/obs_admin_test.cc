// Admin endpoint tests: strict env parsing of the GPIVOT_ADMIN_* knobs, the
// socketless Handle() core for every endpoint, /healthz flipping to 503
// under injected faults (stuck epoch, poisoned WAL, over-bound batcher
// queue), the exact /viewz staleness contract against a live
// ViewManager+SnapshotStore after a rolled-back epoch, and one real
// loopback-socket round trip on an ephemeral port.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "core/gpivot.h"
#include "ivm/view_manager.h"
#include "obs/admin.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/runtime.h"
#include "serve/snapshot.h"
#include "test_util.h"
#include "util/fault_injection.h"

namespace gpivot {
namespace {

using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;
using obs::AdminOptions;
using obs::AdminServer;
using obs::IsValidJson;
using obs::JsonValue;
using obs::MetricsSnapshot;
using obs::ParseJson;
using obs::RuntimeRegistry;
using serve::SnapshotStore;
using testing::I;
using testing::MakeTable;
using testing::S;

// Enables the runtime registry for one test and restores a clean, disabled
// state afterwards so the admin tests cannot leak gauges into each other.
class ScopedRuntime {
 public:
  ScopedRuntime() {
    RuntimeRegistry::Global().ResetForTest();
    RuntimeRegistry::Global().set_enabled(true);
  }
  ~ScopedRuntime() {
    RuntimeRegistry::Global().ResetForTest();
    RuntimeRegistry::Global().set_enabled(false);
  }
};

// Same Items ⋈ Payment pivot view the serve tests maintain.
ViewManager MakePivotManager() {
  Catalog catalog;
  Table items = MakeTable({{"ID", DataType::kInt64},
                           {"Attribute", DataType::kString},
                           {"Value", DataType::kString}},
                          {{I(1), S("Manu"), S("Sony")},
                           {I(1), S("Type"), S("TV")},
                           {I(2), S("Manu"), S("Panasonic")}});
  EXPECT_TRUE(items.SetKey({"ID", "Attribute"}).ok());
  Table payment =
      MakeTable({{"ID", DataType::kInt64}, {"Price", DataType::kInt64}},
                {{I(1), I(200)}, {I(2), I(300)}});
  EXPECT_TRUE(payment.SetKey({"ID"}).ok());
  EXPECT_TRUE(catalog.AddTable("Items", std::move(items)).ok());
  EXPECT_TRUE(catalog.AddTable("Payment", std::move(payment)).ok());

  PlanPtr items_scan = MakeScan(catalog, "Items").value();
  PlanPtr payment_scan = MakeScan(catalog, "Payment").value();
  PivotSpec spec;
  spec.pivot_by = {"Attribute"};
  spec.pivot_on = {"Value"};
  spec.combos = {{S("Manu")}, {S("Type")}};
  PlanPtr view = MakeJoin(MakeGPivot(items_scan, spec), payment_scan, {"ID"});
  ViewManager manager(std::move(catalog));
  EXPECT_TRUE(manager.DefineView("v", view, RefreshStrategy::kUpdate).ok());
  return manager;
}

SourceDeltas ItemsInsert(const ViewManager& manager, int64_t id,
                         const char* attribute, const char* value) {
  ivm::Delta delta = ivm::Delta::Empty(
      manager.catalog().GetTable("Items").value()->schema());
  delta.inserts.AddRow({I(id), S(attribute), S(value)});
  SourceDeltas deltas;
  deltas.emplace("Items", std::move(delta));
  return deltas;
}

TEST(AdminOptionsTest, FromEnvDefaultsAndStrictParse) {
  unsetenv("GPIVOT_ADMIN_PORT");
  unsetenv("GPIVOT_ADMIN_STUCK_EPOCH_MS");
  unsetenv("GPIVOT_ADMIN_SAMPLE_MS");
  auto defaults = AdminOptions::FromEnv();
  ASSERT_TRUE(defaults.ok());
  EXPECT_FALSE(defaults->enabled);
  EXPECT_EQ(defaults->stuck_epoch_ms, 10000u);
  EXPECT_EQ(defaults->sample_ms, 1000u);

  setenv("GPIVOT_ADMIN_PORT", "0", 1);
  auto ephemeral = AdminOptions::FromEnv();
  ASSERT_TRUE(ephemeral.ok());
  EXPECT_TRUE(ephemeral->enabled);
  EXPECT_EQ(ephemeral->port, 0);

  setenv("GPIVOT_ADMIN_PORT", "9178", 1);
  setenv("GPIVOT_ADMIN_STUCK_EPOCH_MS", "2500", 1);
  setenv("GPIVOT_ADMIN_SAMPLE_MS", "250", 1);
  auto custom = AdminOptions::FromEnv();
  ASSERT_TRUE(custom.ok());
  EXPECT_TRUE(custom->enabled);
  EXPECT_EQ(custom->port, 9178);
  EXPECT_EQ(custom->stuck_epoch_ms, 2500u);
  EXPECT_EQ(custom->sample_ms, 250u);

  for (const char* bad : {"", "abc", "-1", "80a", " 80", "80 ", "65536",
                          "0x50", "1e3"}) {
    setenv("GPIVOT_ADMIN_PORT", bad, 1);
    EXPECT_FALSE(AdminOptions::FromEnv().ok()) << "accepted '" << bad << "'";
  }
  setenv("GPIVOT_ADMIN_PORT", "0", 1);
  for (const char* bad : {"", "abc", "0", "-5", "5m"}) {
    setenv("GPIVOT_ADMIN_STUCK_EPOCH_MS", bad, 1);
    EXPECT_FALSE(AdminOptions::FromEnv().ok()) << "accepted '" << bad << "'";
  }
  setenv("GPIVOT_ADMIN_STUCK_EPOCH_MS", "2500", 1);
  for (const char* bad : {"", "xyz", "0"}) {
    setenv("GPIVOT_ADMIN_SAMPLE_MS", bad, 1);
    EXPECT_FALSE(AdminOptions::FromEnv().ok()) << "accepted '" << bad << "'";
  }
  unsetenv("GPIVOT_ADMIN_PORT");
  unsetenv("GPIVOT_ADMIN_STUCK_EPOCH_MS");
  unsetenv("GPIVOT_ADMIN_SAMPLE_MS");
}

TEST(AdminServerTest, HandleRoutesIndexAndUnknownPaths) {
  ScopedRuntime runtime;
  AdminServer server(AdminOptions{});
  AdminServer::Response index = server.Handle("/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
  EXPECT_NE(index.body.find("/viewz"), std::string::npos);
  EXPECT_EQ(server.Handle("/nope").status, 404);
  EXPECT_EQ(server.Handle("").status, 404);
}

TEST(AdminServerTest, MetricsServesGaugesAndDerivedRates) {
  ScopedRuntime runtime;
  obs::MetricsRegistry& metrics = RuntimeRegistry::Global().metrics();
  metrics.SetGauge("ivm.batcher.pending_net_rows", 12.0);
  metrics.AddCounter("serve.query.ops", 10);

  AdminServer server(AdminOptions{});
  server.SampleTick(100.0);
  metrics.AddCounter("serve.query.ops", 40);
  server.SampleTick(110.0);

  AdminServer::Response response = server.Handle("/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(response.body.find(
                "# TYPE gpivot_ivm_batcher_pending_net_rows gauge"),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("gpivot_ivm_batcher_pending_net_rows 12"),
            std::string::npos);
  // 40 more ops over a 10 second window: 4/sec.
  EXPECT_NE(response.body.find("gpivot_rate_serve_query_ops_per_sec 4"),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("gpivot_rate_window_seconds 10"),
            std::string::npos);
}

TEST(AdminServerTest, HealthzHealthyByDefault) {
  ScopedRuntime runtime;
  AdminServer server(AdminOptions{});
  AdminServer::Response response = server.Handle("/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(IsValidJson(response.body)) << response.body;
  EXPECT_NE(response.body.find("\"status\": \"ok\""), std::string::npos);
  for (const char* check : {"wal_writable", "checkpoint_fresh",
                            "batcher_queue_bounded", "epoch_not_stuck"}) {
    EXPECT_NE(response.body.find(check), std::string::npos) << check;
  }
}

TEST(AdminServerTest, HealthzReports503OnInjectedStuckEpoch) {
  ScopedRuntime runtime;
  AdminOptions options;
  options.stuck_epoch_ms = 1;  // anything over 1ms in one phase is stuck
  AdminServer server(options);

  RuntimeRegistry::Global().BeginEpochPhase(42, "commit");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  AdminServer::Response response = server.Handle("/healthz");
  EXPECT_EQ(response.status, 503);
  EXPECT_TRUE(IsValidJson(response.body)) << response.body;
  EXPECT_NE(response.body.find("\"status\": \"unhealthy\""),
            std::string::npos);
  EXPECT_NE(response.body.find("epoch 42 stuck in commit"), std::string::npos)
      << response.body;
  EXPECT_EQ(RuntimeRegistry::Global()
                .metrics()
                .Snapshot()
                .counters.at("ivm.epoch.stuck"),
            1u);

  // The epoch resolving clears the condition.
  RuntimeRegistry::Global().EndEpoch(42);
  EXPECT_EQ(server.Handle("/healthz").status, 200);
}

TEST(AdminServerTest, HealthzReports503OnPoisonedWalAndOverfullBatcher) {
  ScopedRuntime runtime;
  obs::MetricsRegistry& metrics = RuntimeRegistry::Global().metrics();
  AdminServer server(AdminOptions{});

  metrics.SetGauge("storage.wal.poisoned", 1.0);
  AdminServer::Response response = server.Handle("/healthz");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("WAL poisoned"), std::string::npos);
  metrics.SetGauge("storage.wal.poisoned", 0.0);
  EXPECT_EQ(server.Handle("/healthz").status, 200);

  metrics.SetGauge("ivm.batcher.pending_net_rows", 100.0);
  metrics.SetGauge("ivm.batcher.max_net_rows", 50.0);
  response = server.Handle("/healthz");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("over the auto-flush bound"),
            std::string::npos);
  metrics.SetGauge("ivm.batcher.pending_net_rows", 0.0);
  EXPECT_EQ(server.Handle("/healthz").status, 200);

  metrics.SetGauge("storage.checkpoint.cadence", 4.0);
  metrics.SetGauge("storage.checkpoint.age_epochs", 9.0);  // > 2 * cadence
  response = server.Handle("/healthz");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("epochs old"), std::string::npos);
}

TEST(AdminServerTest, StatuszAndEpochzAreValidJson) {
  ScopedRuntime runtime;
  setenv("GPIVOT_ADMIN_SAMPLE_MS", "250", 1);
  AdminServer server(AdminOptions{});

  AdminServer::Response statusz = server.Handle("/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_TRUE(IsValidJson(statusz.body)) << statusz.body;
  EXPECT_NE(statusz.body.find("\"build\""), std::string::npos);
  EXPECT_NE(statusz.body.find("\"uptime_seconds\""), std::string::npos);
  // The GPIVOT_* environment is echoed for debugging.
  EXPECT_NE(statusz.body.find("\"GPIVOT_ADMIN_SAMPLE_MS\": \"250\""),
            std::string::npos)
      << statusz.body;
  unsetenv("GPIVOT_ADMIN_SAMPLE_MS");

  AdminServer::Response empty_ring = server.Handle("/epochz");
  EXPECT_EQ(empty_ring.status, 200);
  EXPECT_TRUE(IsValidJson(empty_ring.body)) << empty_ring.body;

  RuntimeRegistry::Global().RecordEpochJson(
      "{\"seq\": 1, \"outcome\": \"committed\"}");
  RuntimeRegistry::Global().RecordEpochJson(
      "{\"seq\": 2, \"outcome\": \"no_op\"}");
  AdminServer::Response epochz = server.Handle("/epochz");
  EXPECT_TRUE(IsValidJson(epochz.body)) << epochz.body;
  EXPECT_NE(epochz.body.find("\"seq\": 2"), std::string::npos);
}

TEST(AdminServerTest, ViewzStalenessIsManagerSeqMinusSnapshotSeq) {
  ScopedRuntime runtime;
  ViewManager manager = MakePivotManager();
  SnapshotStore store(&manager);
  ASSERT_OK(store.Attach());
  AdminServer server(AdminOptions{});

  // One committed epoch: manager and store both at seq 1, staleness 0.
  ASSERT_OK(manager.ApplyUpdate(ItemsInsert(manager, 2, "Type", "DVD")));
  ASSERT_EQ(store.last_committed_seq(), 1u);

  // A rolled-back epoch consumes seq 2 without installing a snapshot, so
  // the store now deterministically lags the manager by exactly one.
  FaultInjector::Global().Arm(1);
  EXPECT_FALSE(
      manager.ApplyUpdate(ItemsInsert(manager, 3, "Manu", "Sharp")).ok());
  FaultInjector::Global().Disarm();
  ASSERT_EQ(manager.epoch_seq(), 2u);
  ASSERT_EQ(store.last_committed_seq(), 1u);

  AdminServer::Response response = server.Handle("/viewz");
  EXPECT_EQ(response.status, 200);
  ASSERT_TRUE(IsValidJson(response.body)) << response.body;
  std::optional<JsonValue> parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("manager_epoch_seq")->number_value, 2.0);
  const JsonValue* stores = parsed->Find("stores");
  ASSERT_TRUE(stores != nullptr && stores->is_array());
  ASSERT_EQ(stores->array.size(), 1u);
  const JsonValue& entry = stores->array[0];
  EXPECT_EQ(entry.Find("last_committed_seq")->number_value, 1.0);
  const JsonValue* slots = entry.Find("reader_slots");
  ASSERT_NE(slots, nullptr);
  EXPECT_EQ(slots->Find("occupied")->number_value, 0.0);
  const JsonValue* views = entry.Find("views");
  ASSERT_TRUE(views != nullptr && views->is_array());
  ASSERT_EQ(views->array.size(), 1u);
  EXPECT_EQ(views->array[0].Find("view")->string_value, "v");
  EXPECT_EQ(views->array[0].Find("snapshot_seq")->number_value, 1.0);
  EXPECT_EQ(views->array[0].Find("staleness")->number_value, 1.0);

  // Detach unregisters the section: /viewz forgets the store.
  store.Detach();
  AdminServer::Response after = server.Handle("/viewz");
  std::optional<JsonValue> reparsed = ParseJson(after.body);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(reparsed->Find("stores")->array.empty());
}

TEST(AdminServerTest, ServesOneGetOverARealLoopbackSocket) {
  ScopedRuntime runtime;
  AdminOptions options;
  options.enabled = true;
  options.port = 0;  // ephemeral: the kernel picks a free port
  AdminServer server(options);
  ASSERT_OK(server.Start());
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  const char request[] = "GET / HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  ASSERT_EQ(::send(fd, request, sizeof(request) - 1, 0),
            static_cast<ssize_t>(sizeof(request) - 1));
  std::string reply;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("Connection: close"), std::string::npos);
  EXPECT_NE(reply.find("gpivot admin endpoints"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace gpivot
