// Property tests for delta compaction: for randomly generated bag-delta
// batch sequences, the compacted net applied once must be equivalent to the
// batches applied sequentially — base tables bag-identical (byte-identical
// once sorted; cancellation is allowed to change physical row order, and
// nothing else), views bag-identical, and the auditor happy — including the
// undo/rollback path when a fault is injected mid-flush at every injection
// point the flush epoch traverses.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/gpivot.h"
#include "ivm/batcher.h"
#include "ivm/delta.h"
#include "ivm/view_manager.h"
#include "test_util.h"
#include "util/fault_injection.h"

namespace gpivot {
namespace {

using ivm::ApplyDeltaToTable;
using ivm::CompactDeltas;
using ivm::Delta;
using ivm::DeltaBatcher;
using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;
using testing::BagEqual;
using testing::I;
using testing::MakeTable;
using testing::S;

Catalog PivotCatalog() {
  Catalog catalog;
  Table items = MakeTable({{"ID", DataType::kInt64},
                           {"Attribute", DataType::kString},
                           {"Value", DataType::kString}},
                          {{I(1), S("Manu"), S("Sony")},
                           {I(1), S("Type"), S("TV")},
                           {I(2), S("Manu"), S("Panasonic")},
                           {I(2), S("Type"), S("DVD")},
                           {I(3), S("Manu"), S("JVC")}});
  EXPECT_TRUE(items.SetKey({"ID", "Attribute"}).ok());
  Table payment = MakeTable(
      {{"ID", DataType::kInt64}, {"Price", DataType::kInt64}},
      {{I(1), I(200)}, {I(2), I(300)}, {I(3), I(150)}});
  EXPECT_TRUE(payment.SetKey({"ID"}).ok());
  EXPECT_TRUE(catalog.AddTable("Items", std::move(items)).ok());
  EXPECT_TRUE(catalog.AddTable("Payment", std::move(payment)).ok());
  return catalog;
}

ViewManager MakePivotManager() {
  Catalog catalog = PivotCatalog();
  PlanPtr items = MakeScan(catalog, "Items").value();
  PlanPtr payment = MakeScan(catalog, "Payment").value();
  PivotSpec spec;
  spec.pivot_by = {"Attribute"};
  spec.pivot_on = {"Value"};
  spec.combos = {{S("Manu")}, {S("Type")}};
  PlanPtr view = MakeJoin(MakeGPivot(items, spec), payment, {"ID"});
  ViewManager manager(std::move(catalog));
  EXPECT_TRUE(manager.DefineView("v", view, RefreshStrategy::kUpdate).ok());
  return manager;
}

// Generates `num_batches` random bag-delta batches against Items, each
// individually valid when applied in sequence (deletes target live rows;
// inserts use fresh keys or re-fill a key an earlier op vacated — the key
// invariant holds at every step). Tracks a model of the live rows so later
// batches can churn rows earlier batches created: exactly the
// cross-batch-cancellation shapes compaction must get right.
std::vector<SourceDeltas> RandomBatches(const ViewManager& manager,
                                        std::mt19937& rng,
                                        size_t num_batches) {
  std::vector<Row> live = manager.catalog().GetTable("Items").value()->rows();
  int64_t fresh_id = 100;
  std::vector<SourceDeltas> batches;
  const Schema& schema =
      manager.catalog().GetTable("Items").value()->schema();
  for (size_t b = 0; b < num_batches; ++b) {
    Delta delta = Delta::Empty(schema);
    // Rows this batch inserts stay invisible to this batch's own delete
    // ops: ApplyDeltaToTable applies ∇ before Δ, so an in-batch delete of
    // an in-batch insert would target a row not yet in the base.
    std::vector<Row> pending_inserts;
    size_t ops = 1 + rng() % 5;
    for (size_t op = 0; op < ops; ++op) {
      switch (rng() % 3) {
        case 0: {  // delete a row live at batch start
          if (live.empty()) break;
          size_t pick = rng() % live.size();
          delta.deletes.AddRow(live[pick]);
          live.erase(live.begin() + pick);
          break;
        }
        case 1: {  // insert a fresh-key row
          const char* attr = (rng() % 2 == 0) ? "Manu" : "Type";
          Row row{I(fresh_id++), S(attr),
                  Value::Str("val" + std::to_string(rng() % 4))};
          delta.inserts.AddRow(row);
          pending_inserts.push_back(std::move(row));
          break;
        }
        case 2: {  // update: retract a batch-start row, re-fill its key
          if (live.empty()) break;
          size_t pick = rng() % live.size();
          Row old = live[pick];
          Row updated = old;
          updated[2] = Value::Str("upd" + std::to_string(rng() % 4));
          if (updated == old) break;  // no-op update would double-insert
          delta.deletes.AddRow(old);
          delta.inserts.AddRow(updated);
          live.erase(live.begin() + pick);
          pending_inserts.push_back(std::move(updated));
          break;
        }
      }
    }
    live.insert(live.end(), pending_inserts.begin(), pending_inserts.end());
    SourceDeltas deltas;
    deltas.emplace("Items", std::move(delta));
    batches.push_back(std::move(deltas));
  }
  return batches;
}

void ExpectManagersEquivalent(const ViewManager& sequential,
                              const ViewManager& batched) {
  // Base tables: bag-identical. Sorted() makes that a byte comparison —
  // physical row order is the one freedom compaction takes (a cancelled
  // delete+reinsert no longer rebuilds the table around it).
  for (const std::string& name : sequential.catalog().TableNames()) {
    EXPECT_EQ(
        sequential.catalog().GetTable(name).value()->Sorted().rows(),
        batched.catalog().GetTable(name).value()->Sorted().rows())
        << "base table '" << name << "' diverged";
  }
  EXPECT_TRUE(BagEqual(sequential.GetView("v").value()->table(),
                       batched.GetView("v").value()->table()));
}

TEST(BatcherPropertyTest, CompactedFlushEquivalentToSequentialApply) {
  for (uint32_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937 rng(seed);
    ViewManager sequential = MakePivotManager();
    std::vector<SourceDeltas> batches =
        RandomBatches(sequential, rng, 2 + seed % 5);

    for (const SourceDeltas& batch : batches) {
      ASSERT_OK(sequential.ApplyUpdate(batch));
    }
    ASSERT_OK(sequential.Audit());

    ViewManager batched = MakePivotManager();
    DeltaBatcher batcher(&batched);
    for (const SourceDeltas& batch : batches) {
      ASSERT_OK(batcher.Ingest(batch));
    }
    ASSERT_OK(batcher.Flush());
    ASSERT_OK(batched.Audit());

    ExpectManagersEquivalent(sequential, batched);

    // The pure-compaction half of the property: the net delta alone,
    // applied to a copy of the original base table, reproduces the
    // sequential end state (bag-wise).
    ASSERT_OK_AND_ASSIGN(SourceDeltas net,
                         CompactDeltas(MakePivotManager().catalog(), batches));
    Table replay = *MakePivotManager().catalog().GetTable("Items").value();
    if (net.count("Items") != 0) {
      ASSERT_OK(ApplyDeltaToTable(&replay, net.at("Items")));
    }
    EXPECT_EQ(
        replay.Sorted().rows(),
        sequential.catalog().GetTable("Items").value()->Sorted().rows());
  }
}

// The rollback half: inject a fault at every point a flush epoch traverses.
// Every injected failure must leave the batched manager byte-identical to
// its pre-flush state with the queue still pending; the eventual clean
// retry must land on the sequential end state.
TEST(BatcherPropertyTest, FaultSweepMidFlushRollsBackAndRetries) {
  for (uint32_t seed = 100; seed < 106; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937 rng(seed);
    ViewManager sequential = MakePivotManager();
    std::vector<SourceDeltas> batches = RandomBatches(sequential, rng, 4);
    for (const SourceDeltas& batch : batches) {
      ASSERT_OK(sequential.ApplyUpdate(batch));
    }

    ViewManager batched = MakePivotManager();
    DeltaBatcher batcher(&batched);
    for (const SourceDeltas& batch : batches) {
      ASSERT_OK(batcher.Ingest(batch));
    }
    size_t pending_batches = batcher.pending_batches();
    size_t pending_rows = batcher.pending_net_rows();
    std::vector<Row> items_before =
        batched.catalog().GetTable("Items").value()->rows();
    std::vector<Row> view_before =
        batched.GetView("v").value()->table().rows();

    FaultInjector& injector = FaultInjector::Global();
    size_t points_hit = 0;
    for (size_t n = 1;; ++n) {
      injector.Arm(n);
      Status st = batcher.Flush();
      bool fired = injector.fired();
      injector.Disarm();
      if (st.ok()) {
        EXPECT_FALSE(fired);
        break;
      }
      ASSERT_TRUE(fired) << "non-injected failure at n=" << n << ": "
                         << st.ToString();
      points_hit = n;
      // Rolled back byte-identically; nothing consumed from the queue.
      EXPECT_EQ(batched.catalog().GetTable("Items").value()->rows(),
                items_before);
      EXPECT_EQ(batched.GetView("v").value()->table().rows(), view_before);
      EXPECT_EQ(batcher.pending_batches(), pending_batches);
      EXPECT_EQ(batcher.pending_net_rows(), pending_rows);
      ASSERT_OK(batched.Audit());
    }
    if (pending_rows > 0) {
      EXPECT_GE(points_hit, 1u) << "flush traversed no fault points";
    }
    EXPECT_EQ(batcher.pending_batches(), 0u);
    ASSERT_OK(batched.Audit());
    ExpectManagersEquivalent(sequential, batched);
  }
}

}  // namespace
}  // namespace gpivot
