// Tests for the eventlog_check validator (tools/eventlog_check.*): the
// record-kind grammar for epoch / recovery / serve lines, first-error
// diagnostics, and the --require-committed contract the CI smoke job
// enforces on fault-free bench runs.
#include <gtest/gtest.h>

#include <string>

#include "tools/eventlog_check.h"

namespace gpivot::tools {
namespace {

TEST(EventLogCheckTest, AcceptsAWellFormedMixedLog) {
  const std::string log =
      "{\"seq\": 1, \"outcome\": \"committed\", \"entry\": \"epoch\"}\n"
      "{\"seq\": 2, \"outcome\": \"no_op\", \"entry\": \"epoch\"}\n"
      "{\"recovery\": {\"epoch_seq\": 2, \"wal_frames\": 7}}\n"
      "{\"serve\": \"install\", \"seq\": 2, \"views\": [\"v\"]}\n"
      "{\"serve\": \"retire\", \"view\": \"v\", \"seq\": 1}\n";
  EventLogCheckResult result = CheckEventLog(log, /*require_committed=*/false);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.lines, 5u);
  EXPECT_EQ(result.epoch_records, 2u);
  EXPECT_EQ(result.committed, 1u);
  EXPECT_EQ(result.no_ops, 1u);
  EXPECT_EQ(result.recovery_records, 1u);
  EXPECT_EQ(result.serve_records, 2u);
}

TEST(EventLogCheckTest, EmptyLogIsValidWithoutRequireCommitted) {
  EXPECT_TRUE(CheckEventLog("", false).ok);
  EXPECT_TRUE(CheckEventLog("\n\n", false).ok);  // blank lines tolerated
  EXPECT_FALSE(CheckEventLog("", true).ok);      // but nothing committed
}

TEST(EventLogCheckTest, RejectsMalformedJsonWithLineNumber) {
  const std::string log =
      "{\"seq\": 1, \"outcome\": \"committed\", \"entry\": \"e\"}\n"
      "{\"seq\": 2, \"outcome\": \n";
  EventLogCheckResult result = CheckEventLog(log, false);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 2"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("not valid JSON"), std::string::npos);
}

TEST(EventLogCheckTest, RejectsUnknownRecordKindsAndShapes) {
  EXPECT_FALSE(CheckEventLog("[1, 2]\n", false).ok);       // not an object
  EXPECT_FALSE(CheckEventLog("{\"what\": 1}\n", false).ok);  // unknown kind
  // Epoch records need a string outcome from the known set, a numeric seq,
  // and a string entry.
  EXPECT_FALSE(
      CheckEventLog("{\"outcome\": \"exploded\", \"seq\": 1, "
                    "\"entry\": \"e\"}\n",
                    false)
          .ok);
  EXPECT_FALSE(
      CheckEventLog("{\"outcome\": 7, \"seq\": 1, \"entry\": \"e\"}\n", false)
          .ok);
  EXPECT_FALSE(
      CheckEventLog("{\"outcome\": \"committed\", \"entry\": \"e\"}\n", false)
          .ok);
  EXPECT_FALSE(CheckEventLog(
                   "{\"outcome\": \"committed\", \"seq\": \"one\", "
                   "\"entry\": \"e\"}\n",
                   false)
                   .ok);
  EXPECT_FALSE(
      CheckEventLog("{\"outcome\": \"committed\", \"seq\": 1}\n", false).ok);
  // Recovery must hold an object with epoch_seq.
  EXPECT_FALSE(CheckEventLog("{\"recovery\": 3}\n", false).ok);
  EXPECT_FALSE(CheckEventLog("{\"recovery\": {\"frames\": 3}}\n", false).ok);
  // Serve records: install needs seq + views array, retire view + seq.
  EXPECT_FALSE(CheckEventLog("{\"serve\": \"upgrade\"}\n", false).ok);
  EXPECT_FALSE(
      CheckEventLog("{\"serve\": \"install\", \"seq\": 1}\n", false).ok);
  EXPECT_FALSE(CheckEventLog(
                   "{\"serve\": \"install\", \"seq\": 1, \"views\": 9}\n",
                   false)
                   .ok);
  EXPECT_FALSE(
      CheckEventLog("{\"serve\": \"retire\", \"view\": \"v\"}\n", false).ok);
}

TEST(EventLogCheckTest, ReportsOnlyTheFirstError) {
  EventLogCheckResult result = CheckEventLog("nope\nalso nope\n", false);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 1"), std::string::npos);
  EXPECT_EQ(result.error.find("line 2"), std::string::npos);
  EXPECT_EQ(result.lines, 2u);  // counting continues past the failure
}

TEST(EventLogCheckTest, RequireCommittedContract) {
  const char* committed =
      "{\"seq\": 1, \"outcome\": \"committed\", \"entry\": \"e\"}\n";
  EXPECT_TRUE(CheckEventLog(committed, true).ok);

  // no_op alone does not satisfy the requirement.
  const char* only_no_op =
      "{\"seq\": 1, \"outcome\": \"no_op\", \"entry\": \"e\"}\n";
  EventLogCheckResult result = CheckEventLog(only_no_op, true);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no committed"), std::string::npos);

  // A rolled-back or rejected epoch in a supposedly fault-free run fails
  // even when another epoch committed.
  const std::string with_rollback = std::string(committed) +
      "{\"seq\": 2, \"outcome\": \"rolled_back\", \"entry\": \"e\"}\n";
  result = CheckEventLog(with_rollback, true);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("rolled back"), std::string::npos);

  const std::string with_rejected = std::string(committed) +
      "{\"seq\": 2, \"outcome\": \"rejected\", \"entry\": \"e\"}\n";
  EXPECT_FALSE(CheckEventLog(with_rejected, true).ok);
  // Without the flag the same logs are fine.
  EXPECT_TRUE(CheckEventLog(with_rollback, false).ok);
  EXPECT_TRUE(CheckEventLog(with_rejected, false).ok);
}

}  // namespace
}  // namespace gpivot::tools
