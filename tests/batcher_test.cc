// Unit tests for the delta ingest pipeline: DeltaBatcher / CompactDeltas
// bag-cancel compaction rules, auto-flush triggers, the
// "batched_apply_update" epoch tagging, no-op epoch short-circuits, and
// the batched-vs-one-by-one cost win the micro-batch bench measures.
#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "core/gpivot.h"
#include "ivm/batcher.h"
#include "ivm/delta.h"
#include "ivm/view_manager.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/views.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace gpivot {
namespace {

using ivm::BatcherOptions;
using ivm::CompactDeltas;
using ivm::Delta;
using ivm::DeltaBatcher;
using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;
using testing::BagEqual;
using testing::I;
using testing::MakeTable;
using testing::S;

// ---- Pure compaction (CompactDeltas) --------------------------------------

Schema TSchema() {
  return Schema({{"x", DataType::kInt64}, {"s", DataType::kString}});
}

Catalog BagCatalog() {
  Catalog catalog;
  Table t(TSchema());
  t.AddRow({I(1), S("a")});
  t.AddRow({I(2), S("b")});
  EXPECT_TRUE(catalog.AddTable("t", std::move(t)).ok());
  return catalog;
}

SourceDeltas OneTable(Delta delta) {
  SourceDeltas deltas;
  deltas.emplace("t", std::move(delta));
  return deltas;
}

TEST(CompactDeltasTest, LaterDeleteCancelsEarlierInsert) {
  Catalog catalog = BagCatalog();
  Delta b1 = Delta::Empty(TSchema());
  b1.inserts.AddRow({I(3), S("c")});
  b1.inserts.AddRow({I(4), S("d")});
  Delta b2 = Delta::Empty(TSchema());
  b2.deletes.AddRow({I(3), S("c")});
  ASSERT_OK_AND_ASSIGN(
      SourceDeltas net,
      CompactDeltas(catalog, {OneTable(std::move(b1)), OneTable(std::move(b2))}));
  ASSERT_EQ(net.count("t"), 1u);
  EXPECT_EQ(net.at("t").deletes.num_rows(), 0u);
  ASSERT_EQ(net.at("t").inserts.num_rows(), 1u);
  EXPECT_EQ(net.at("t").inserts.rows()[0], (Row{I(4), S("d")}));
}

TEST(CompactDeltasTest, LaterReinsertCancelsEarlierDelete) {
  Catalog catalog = BagCatalog();
  Delta b1 = Delta::Empty(TSchema());
  b1.deletes.AddRow({I(1), S("a")});
  Delta b2 = Delta::Empty(TSchema());
  b2.inserts.AddRow({I(1), S("a")});
  ASSERT_OK_AND_ASSIGN(
      SourceDeltas net,
      CompactDeltas(catalog, {OneTable(std::move(b1)), OneTable(std::move(b2))}));
  // Fully cancelled table: dropped from the net entirely.
  EXPECT_TRUE(net.empty());
}

TEST(CompactDeltasTest, KeyedChurnCollapsesToOneNetPairPerKey) {
  // An update is ∇(k, old) + Δ(k, new); churned twice across batches the
  // intermediate version must vanish: net = ∇(k, v0) + Δ(k, v2).
  Catalog catalog = BagCatalog();
  Delta b1 = Delta::Empty(TSchema());
  b1.deletes.AddRow({I(1), S("a")});
  b1.inserts.AddRow({I(1), S("v1")});
  Delta b2 = Delta::Empty(TSchema());
  b2.deletes.AddRow({I(1), S("v1")});
  b2.inserts.AddRow({I(1), S("v2")});
  ASSERT_OK_AND_ASSIGN(
      SourceDeltas net,
      CompactDeltas(catalog, {OneTable(std::move(b1)), OneTable(std::move(b2))}));
  ASSERT_EQ(net.count("t"), 1u);
  ASSERT_EQ(net.at("t").deletes.num_rows(), 1u);
  EXPECT_EQ(net.at("t").deletes.rows()[0], (Row{I(1), S("a")}));
  ASSERT_EQ(net.at("t").inserts.num_rows(), 1u);
  EXPECT_EQ(net.at("t").inserts.rows()[0], (Row{I(1), S("v2")}));
}

TEST(CompactDeltasTest, BagMultiplicitiesSumExactly) {
  // Three inserts and one delete of the same row leave net +2 (bag
  // semantics: each occurrence counts).
  Catalog catalog = BagCatalog();
  Delta b1 = Delta::Empty(TSchema());
  b1.inserts.AddRow({I(7), S("z")});
  b1.inserts.AddRow({I(7), S("z")});
  Delta b2 = Delta::Empty(TSchema());
  b2.deletes.AddRow({I(7), S("z")});
  b2.inserts.AddRow({I(7), S("z")});
  ASSERT_OK_AND_ASSIGN(
      SourceDeltas net,
      CompactDeltas(catalog, {OneTable(std::move(b1)), OneTable(std::move(b2))}));
  ASSERT_EQ(net.count("t"), 1u);
  EXPECT_EQ(net.at("t").inserts.num_rows(), 2u);
  EXPECT_EQ(net.at("t").deletes.num_rows(), 0u);
}

TEST(CompactDeltasTest, EmitOrderIsFirstTouchDeterministic) {
  Catalog catalog = BagCatalog();
  Delta b1 = Delta::Empty(TSchema());
  b1.inserts.AddRow({I(10), S("p")});
  b1.inserts.AddRow({I(11), S("q")});
  Delta b2 = Delta::Empty(TSchema());
  b2.inserts.AddRow({I(12), S("r")});
  std::vector<SourceDeltas> batches;
  batches.push_back(OneTable(std::move(b1)));
  batches.push_back(OneTable(std::move(b2)));
  ASSERT_OK_AND_ASSIGN(SourceDeltas once, CompactDeltas(catalog, batches));
  ASSERT_OK_AND_ASSIGN(SourceDeltas again, CompactDeltas(catalog, batches));
  ASSERT_EQ(once.at("t").inserts.rows(), again.at("t").inserts.rows());
  // First-touch order across batches, not hash order.
  EXPECT_EQ(once.at("t").inserts.rows()[0], (Row{I(10), S("p")}));
  EXPECT_EQ(once.at("t").inserts.rows()[2], (Row{I(12), S("r")}));
}

TEST(CompactDeltasTest, UnknownTableRejectedWithBatchIndex) {
  Catalog catalog = BagCatalog();
  Delta bad = Delta::Empty(TSchema());
  bad.inserts.AddRow({I(1), S("a")});
  SourceDeltas deltas;
  deltas.emplace("ghost", std::move(bad));
  Status st = CompactDeltas(catalog, {OneTable(Delta::Empty(TSchema())),
                                      deltas})
                  .status();
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();
  EXPECT_NE(st.message().find("batch #1"), std::string::npos)
      << st.ToString();
}

TEST(CompactDeltasTest, EmptySideWithWrongSchemaRejected) {
  // Regression: an empty side's schema still merges across batches, so a
  // mismatching schema must be rejected even though the side has no rows.
  Catalog catalog = BagCatalog();
  Schema narrow({{"x", DataType::kInt64}});
  Delta bad{Table(TSchema()), Table(narrow)};  // empty ∇ with wrong schema
  bad.inserts.AddRow({I(5), S("e")});
  Status st = CompactDeltas(catalog, {OneTable(std::move(bad))}).status();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

// ---- Manager-level pipeline (Fig. 24 Items ⋈ Payment view) ----------------

Catalog PivotCatalog() {
  Catalog catalog;
  Table items = MakeTable({{"ID", DataType::kInt64},
                           {"Attribute", DataType::kString},
                           {"Value", DataType::kString}},
                          {{I(1), S("Manu"), S("Sony")},
                           {I(1), S("Type"), S("TV")},
                           {I(2), S("Manu"), S("Panasonic")}});
  EXPECT_TRUE(items.SetKey({"ID", "Attribute"}).ok());
  Table payment = MakeTable(
      {{"ID", DataType::kInt64}, {"Price", DataType::kInt64}},
      {{I(1), I(200)}, {I(2), I(300)}});
  EXPECT_TRUE(payment.SetKey({"ID"}).ok());
  EXPECT_TRUE(catalog.AddTable("Items", std::move(items)).ok());
  EXPECT_TRUE(catalog.AddTable("Payment", std::move(payment)).ok());
  return catalog;
}

PlanPtr PivotView(const Catalog& catalog) {
  PlanPtr items = MakeScan(catalog, "Items").value();
  PlanPtr payment = MakeScan(catalog, "Payment").value();
  PivotSpec spec;
  spec.pivot_by = {"Attribute"};
  spec.pivot_on = {"Value"};
  spec.combos = {{S("Manu")}, {S("Type")}};
  return MakeJoin(MakeGPivot(items, spec), payment, {"ID"});
}

ViewManager MakePivotManager() {
  Catalog catalog = PivotCatalog();
  PlanPtr view = PivotView(catalog);
  ViewManager manager(std::move(catalog));
  EXPECT_TRUE(manager.DefineView("v", view, RefreshStrategy::kUpdate).ok());
  return manager;
}

Delta ItemsDelta(const ViewManager& manager) {
  return Delta::Empty(
      manager.catalog().GetTable("Items").value()->schema());
}

SourceDeltas ItemsBatch(Delta delta) {
  SourceDeltas deltas;
  deltas.emplace("Items", std::move(delta));
  return deltas;
}

TEST(DeltaBatcherTest, FlushAppliesNetAsSingleTaggedEpoch) {
  ViewManager manager = MakePivotManager();
  DeltaBatcher batcher(&manager);
  // Batch 1 gives item 2 a Type; batch 2 retracts it and sets another.
  Delta b1 = ItemsDelta(manager);
  b1.inserts.AddRow({I(2), S("Type"), S("DVD")});
  Delta b2 = ItemsDelta(manager);
  b2.deletes.AddRow({I(2), S("Type"), S("DVD")});
  b2.inserts.AddRow({I(2), S("Type"), S("VCR")});
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b1))));
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b2))));
  EXPECT_EQ(batcher.pending_batches(), 2u);
  EXPECT_EQ(batcher.pending_net_rows(), 1u);  // DVD churn cancelled

  ASSERT_OK(batcher.Flush());
  ASSERT_TRUE(manager.LastEpochReport().has_value());
  EXPECT_EQ(manager.LastEpochReport()->entry, "batched_apply_update");
  EXPECT_EQ(manager.LastEpochReport()->outcome, "committed");
  EXPECT_EQ(manager.LastEpochReport()->seq, 1u);  // one epoch, not two
  EXPECT_EQ(batcher.pending_batches(), 0u);
  EXPECT_EQ(batcher.pending_net_rows(), 0u);
  ASSERT_OK(manager.Audit());
  // The view saw only the net: item 2 carries VCR.
  const Table& view = manager.GetView("v").value()->table();
  const Schema& schema = view.schema();
  size_t id = schema.ColumnIndexOrDie("ID");
  size_t type = schema.ColumnIndexOrDie("Type**Value");
  for (const Row& row : view.rows()) {
    if (row[id] == I(2)) {
      EXPECT_EQ(row[type], S("VCR"));
    }
  }
  EXPECT_EQ(batcher.stats().batches_absorbed, 2u);
  EXPECT_EQ(batcher.stats().rows_ingested, 3u);
  EXPECT_EQ(batcher.stats().rows_cancelled, 2u);
  EXPECT_EQ(batcher.stats().net_rows_flushed, 1u);
  EXPECT_EQ(batcher.stats().flushes, 1u);
}

TEST(DeltaBatcherTest, EmptyFlushIsCheapNoOpEpoch) {
  ViewManager manager = MakePivotManager();
  DeltaBatcher batcher(&manager);
  ASSERT_OK(batcher.Flush());  // nothing pending: the timer-flush case
  ASSERT_TRUE(manager.LastEpochReport().has_value());
  EXPECT_EQ(manager.LastEpochReport()->entry, "batched_apply_update");
  EXPECT_EQ(manager.LastEpochReport()->outcome, "no_op");
  EXPECT_EQ(manager.LastEpochReport()->seq, 0u);  // no seq consumed
  EXPECT_TRUE(manager.LastEpochReport()->views.empty());
  EXPECT_EQ(batcher.stats().noop_flushes, 1u);
  EXPECT_EQ(batcher.stats().flushes, 0u);

  // A fully self-cancelling queue flushes as a no_op too.
  Delta b1 = ItemsDelta(manager);
  b1.inserts.AddRow({I(2), S("Type"), S("DVD")});
  Delta b2 = ItemsDelta(manager);
  b2.deletes.AddRow({I(2), S("Type"), S("DVD")});
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b1))));
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b2))));
  EXPECT_EQ(batcher.pending_net_rows(), 0u);
  ASSERT_OK(batcher.Flush());
  EXPECT_EQ(manager.LastEpochReport()->outcome, "no_op");
  EXPECT_EQ(manager.LastEpochReport()->seq, 0u);
}

TEST(DeltaBatcherTest, IngestRejectsMalformedBatchWithoutPollutingQueue) {
  ViewManager manager = MakePivotManager();
  DeltaBatcher batcher(&manager);
  Delta good = ItemsDelta(manager);
  good.inserts.AddRow({I(3), S("Manu"), S("JVC")});
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(good))));

  SourceDeltas unknown;
  unknown.emplace("ghost", Delta::Empty(TSchema()));
  EXPECT_TRUE(batcher.Ingest(unknown).IsNotFound());

  // Empty side carrying a wrong schema: the regression ValidateDeltas now
  // catches (it would otherwise merge into a non-empty net side).
  Delta bad = ItemsDelta(manager);
  bad.inserts.AddRow({I(4), S("Manu"), S("LG")});
  bad.deletes = Table(Schema({{"z", DataType::kInt64}}));  // empty, wrong
  Status st = batcher.Ingest(ItemsBatch(std::move(bad)));
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();

  // The queue still holds exactly the one good batch.
  EXPECT_EQ(batcher.pending_batches(), 1u);
  EXPECT_EQ(batcher.pending_net_rows(), 1u);
  ASSERT_OK(batcher.Flush());
  ASSERT_OK(manager.Audit());
}

TEST(DeltaBatcherTest, AutoFlushOnMaxBatches) {
  ViewManager manager = MakePivotManager();
  BatcherOptions options;
  options.max_batches = 2;
  DeltaBatcher batcher(&manager, options);
  Delta b1 = ItemsDelta(manager);
  b1.inserts.AddRow({I(2), S("Type"), S("DVD")});
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b1))));
  EXPECT_EQ(batcher.pending_batches(), 1u);
  Delta b2 = ItemsDelta(manager);
  b2.inserts.AddRow({I(3), S("Manu"), S("JVC")});
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b2))));  // triggers flush
  EXPECT_EQ(batcher.pending_batches(), 0u);
  EXPECT_EQ(batcher.stats().flushes, 1u);
  EXPECT_EQ(manager.LastEpochReport()->entry, "batched_apply_update");
  ASSERT_OK(manager.Audit());
}

TEST(DeltaBatcherTest, AutoFlushOnMaxNetRows) {
  ViewManager manager = MakePivotManager();
  BatcherOptions options;
  options.max_net_rows = 2;
  DeltaBatcher batcher(&manager, options);
  Delta b1 = ItemsDelta(manager);
  b1.inserts.AddRow({I(2), S("Type"), S("DVD")});
  b1.inserts.AddRow({I(3), S("Manu"), S("JVC")});
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b1))));  // 2 net rows: flush
  EXPECT_EQ(batcher.pending_net_rows(), 0u);
  EXPECT_EQ(batcher.stats().flushes, 1u);
  ASSERT_OK(manager.Audit());
}

TEST(DeltaBatcherTest, FailedFlushRollsBackAndKeepsQueue) {
  ViewManager manager = MakePivotManager();
  DeltaBatcher batcher(&manager);
  Delta b1 = ItemsDelta(manager);
  b1.inserts.AddRow({I(2), S("Type"), S("DVD")});
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b1))));
  std::vector<Row> items_before =
      manager.catalog().GetTable("Items").value()->rows();
  std::vector<Row> view_before = manager.GetView("v").value()->table().rows();

  FaultInjector::Global().Arm(1);
  Status st = batcher.Flush();
  EXPECT_TRUE(FaultInjector::Global().fired());
  FaultInjector::Global().Disarm();
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
  // Epoch rolled back byte-identically; the queue survived for a retry.
  EXPECT_EQ(manager.catalog().GetTable("Items").value()->rows(),
            items_before);
  EXPECT_EQ(manager.GetView("v").value()->table().rows(), view_before);
  EXPECT_EQ(manager.LastEpochReport()->outcome, "rolled_back");
  EXPECT_EQ(batcher.pending_batches(), 1u);
  EXPECT_EQ(batcher.pending_net_rows(), 1u);

  ASSERT_OK(batcher.Flush());  // retry commits
  EXPECT_EQ(manager.LastEpochReport()->outcome, "committed");
  EXPECT_EQ(batcher.pending_batches(), 0u);
  ASSERT_OK(manager.Audit());
}

TEST(DeltaBatcherTest, OptionsFromEnvStrictParse) {
  ::setenv("GPIVOT_BATCH_MAX_BATCHES", "16", 1);
  ::setenv("GPIVOT_BATCH_MAX_NET_ROWS", "4096", 1);
  auto options = BatcherOptions::FromEnv();
  ASSERT_OK(options.status());
  EXPECT_EQ(options->max_batches, 16u);
  EXPECT_EQ(options->max_net_rows, 4096u);
  ::setenv("GPIVOT_BATCH_MAX_BATCHES", "16x", 1);
  EXPECT_TRUE(BatcherOptions::FromEnv().status().IsInvalidArgument());
  ::setenv("GPIVOT_BATCH_MAX_BATCHES", "-1", 1);
  EXPECT_TRUE(BatcherOptions::FromEnv().status().IsInvalidArgument());
  ::unsetenv("GPIVOT_BATCH_MAX_BATCHES");
  ::unsetenv("GPIVOT_BATCH_MAX_NET_ROWS");
  auto defaults = BatcherOptions::FromEnv();
  ASSERT_OK(defaults.status());
  EXPECT_EQ(defaults->max_batches, 0u);
  EXPECT_EQ(defaults->max_net_rows, 0u);
}

TEST(DeltaBatcherTest, FullyCancelledRowsDoNotCountTowardMaxNetRows) {
  // Pin the net-row accounting audited for the sharding work: the
  // max_net_rows auto-flush trigger compares against the *net* pending
  // delta, so rows that fully cancel inside the queue must not count — a
  // hot key churning under the threshold never forces a flush, which is
  // exactly the window the heavy/light classifier batches over.
  ViewManager manager = MakePivotManager();
  BatcherOptions options;
  options.max_net_rows = 3;
  DeltaBatcher batcher(&manager, options);
  Delta b1 = ItemsDelta(manager);
  b1.inserts.AddRow({I(2), S("Type"), S("DVD")});
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b1))));  // net 1: no flush
  EXPECT_EQ(batcher.stats().flushes, 0u);
  Delta b2 = ItemsDelta(manager);
  b2.deletes.AddRow({I(2), S("Type"), S("DVD")});
  b2.inserts.AddRow({I(2), S("Type"), S("VCR")});
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b2))));
  // Gross ingest is 3 rows — at the trigger if the accounting were gross —
  // but the DVD pair cancelled, so the net is 1 and nothing flushes.
  EXPECT_EQ(batcher.pending_net_rows(), 1u);
  EXPECT_EQ(batcher.stats().flushes, 0u);
  ASSERT_OK(batcher.Flush());
  ASSERT_OK(manager.Audit());
  EXPECT_EQ(batcher.stats().rows_ingested, 3u);
  EXPECT_EQ(batcher.stats().rows_cancelled, 2u);
  // healthz-facing stats agree: flushed net = ingested - cancelled.
  EXPECT_EQ(batcher.stats().net_rows_flushed,
            batcher.stats().rows_ingested - batcher.stats().rows_cancelled);
}

// ---- Heavy/light key classifier (GPIVOT_HEAVY_KEY_THRESHOLD) --------------

TEST(DeltaBatcherTest, HotKeyChurnPromotesToHeavyAccumulator) {
  ViewManager manager = MakePivotManager();
  BatcherOptions options;
  options.heavy_key_threshold = 2;
  DeltaBatcher batcher(&manager, options);
  // Key (1, Manu) currently holds Sony; churn it through v1 to v2 across
  // two batches — the second touch promotes it.
  Delta b1 = ItemsDelta(manager);
  b1.deletes.AddRow({I(1), S("Manu"), S("Sony")});
  b1.inserts.AddRow({I(1), S("Manu"), S("v1")});
  Delta b2 = ItemsDelta(manager);
  b2.deletes.AddRow({I(1), S("Manu"), S("v1")});
  b2.inserts.AddRow({I(1), S("Manu"), S("v2")});
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b1))));
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b2))));
  EXPECT_EQ(batcher.stats().heavy_keys_classified, 1u);
  EXPECT_EQ(batcher.stats().heavy_spills, 0u);
  // The accumulator folded the churn in place: net = ∇(Sony) + Δ(v2),
  // exactly what the threshold-0 path nets to.
  SourceDeltas net = batcher.PendingNet();
  ASSERT_EQ(net.count("Items"), 1u);
  ASSERT_EQ(net.at("Items").deletes.num_rows(), 1u);
  EXPECT_EQ(net.at("Items").deletes.rows()[0],
            (Row{I(1), S("Manu"), S("Sony")}));
  ASSERT_EQ(net.at("Items").inserts.num_rows(), 1u);
  EXPECT_EQ(net.at("Items").inserts.rows()[0],
            (Row{I(1), S("Manu"), S("v2")}));
  EXPECT_EQ(batcher.pending_net_rows(), 2u);

  ASSERT_OK(batcher.Flush());
  ASSERT_OK(manager.Audit());
  const Table& view = manager.GetView("v").value()->table();
  const Schema& schema = view.schema();
  size_t id = schema.ColumnIndexOrDie("ID");
  size_t manu = schema.ColumnIndexOrDie("Manu**Value");
  for (const Row& row : view.rows()) {
    if (row[id] == I(1)) EXPECT_EQ(row[manu], S("v2"));
  }
}

TEST(DeltaBatcherTest, HeavyAccumulatorSpillsOnShapeConflict) {
  // Two pending inserts under one key do not fit the one-delete/one-insert
  // accumulator shape: the key must spill back to the general bag and the
  // net must still be exact (bag semantics preserved through the demotion).
  ViewManager manager = MakePivotManager();
  BatcherOptions options;
  options.heavy_key_threshold = 2;
  DeltaBatcher batcher(&manager, options);
  Delta b1 = ItemsDelta(manager);
  b1.inserts.AddRow({I(9), S("Manu"), S("x1")});
  Delta b2 = ItemsDelta(manager);
  b2.inserts.AddRow({I(9), S("Manu"), S("x2")});
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b1))));
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b2))));
  EXPECT_GE(batcher.stats().heavy_spills, 1u);
  SourceDeltas net = batcher.PendingNet();
  ASSERT_EQ(net.count("Items"), 1u);
  EXPECT_EQ(net.at("Items").inserts.num_rows(), 2u);
  EXPECT_EQ(net.at("Items").deletes.num_rows(), 0u);

  // Retract both: the spilled key's rows cancel like any light key's.
  Delta b3 = ItemsDelta(manager);
  b3.deletes.AddRow({I(9), S("Manu"), S("x1")});
  b3.deletes.AddRow({I(9), S("Manu"), S("x2")});
  ASSERT_OK(batcher.Ingest(ItemsBatch(std::move(b3))));
  EXPECT_EQ(batcher.pending_net_rows(), 0u);
  ASSERT_OK(batcher.Flush());
  EXPECT_EQ(manager.LastEpochReport()->outcome, "no_op");
  ASSERT_OK(manager.Audit());
}

TEST(DeltaBatcherTest, ClassifierNetEquivalentToThresholdZero) {
  // Same churn stream through threshold 0 and threshold 2: the pending
  // nets must be bag-equal per side (emission order may differ — heavy
  // rows emit after the general bag) and the flushed views identical.
  auto churn = [](ViewManager& manager) {
    std::vector<SourceDeltas> batches;
    Delta b1 = ItemsDelta(manager);
    b1.deletes.AddRow({I(1), S("Manu"), S("Sony")});
    b1.inserts.AddRow({I(1), S("Manu"), S("s1")});
    b1.inserts.AddRow({I(3), S("Manu"), S("JVC")});
    batches.push_back(ItemsBatch(std::move(b1)));
    Delta b2 = ItemsDelta(manager);
    b2.deletes.AddRow({I(1), S("Manu"), S("s1")});
    b2.inserts.AddRow({I(1), S("Manu"), S("s2")});
    b2.deletes.AddRow({I(2), S("Manu"), S("Panasonic")});
    b2.inserts.AddRow({I(2), S("Manu"), S("p1")});
    batches.push_back(ItemsBatch(std::move(b2)));
    Delta b3 = ItemsDelta(manager);
    b3.deletes.AddRow({I(1), S("Manu"), S("s2")});
    b3.inserts.AddRow({I(1), S("Manu"), S("s3")});
    batches.push_back(ItemsBatch(std::move(b3)));
    return batches;
  };
  ViewManager plain = MakePivotManager();
  DeltaBatcher plain_batcher(&plain);  // threshold 0
  for (SourceDeltas& batch : churn(plain)) {
    ASSERT_OK(plain_batcher.Ingest(batch));
  }
  ViewManager heavy = MakePivotManager();
  BatcherOptions options;
  options.heavy_key_threshold = 2;
  DeltaBatcher heavy_batcher(&heavy, options);
  for (SourceDeltas& batch : churn(heavy)) {
    ASSERT_OK(heavy_batcher.Ingest(batch));
  }
  // Keys (1, Manu) and (2, Manu) both hit two touches; (3, Manu) stays
  // light.
  EXPECT_EQ(heavy_batcher.stats().heavy_keys_classified, 2u);
  EXPECT_EQ(plain_batcher.stats().heavy_keys_classified, 0u);
  EXPECT_EQ(plain_batcher.pending_net_rows(),
            heavy_batcher.pending_net_rows());
  SourceDeltas plain_net = plain_batcher.PendingNet();
  SourceDeltas heavy_net = heavy_batcher.PendingNet();
  ASSERT_EQ(plain_net.count("Items"), 1u);
  ASSERT_EQ(heavy_net.count("Items"), 1u);
  EXPECT_TRUE(BagEqual(plain_net.at("Items").inserts,
                       heavy_net.at("Items").inserts));
  EXPECT_TRUE(BagEqual(plain_net.at("Items").deletes,
                       heavy_net.at("Items").deletes));

  ASSERT_OK(plain_batcher.Flush());
  ASSERT_OK(heavy_batcher.Flush());
  ASSERT_OK(plain.Audit());
  ASSERT_OK(heavy.Audit());
  EXPECT_TRUE(BagEqual(plain.GetView("v").value()->table(),
                       heavy.GetView("v").value()->table()));
}

TEST(DeltaBatcherTest, HeavyThresholdFromEnvStrictParse) {
  ::setenv("GPIVOT_HEAVY_KEY_THRESHOLD", "4", 1);
  auto options = BatcherOptions::FromEnv();
  ASSERT_OK(options.status());
  EXPECT_EQ(options->heavy_key_threshold, 4u);
  for (const char* bad : {"4x", "-1", "3.5"}) {
    ::setenv("GPIVOT_HEAVY_KEY_THRESHOLD", bad, 1);
    EXPECT_TRUE(BatcherOptions::FromEnv().status().IsInvalidArgument())
        << "'" << bad << "' must be rejected, not silently defaulted";
  }
  ::unsetenv("GPIVOT_HEAVY_KEY_THRESHOLD");
  auto defaults = BatcherOptions::FromEnv();
  ASSERT_OK(defaults.status());
  EXPECT_EQ(defaults->heavy_key_threshold, 0u);
}

// ---- The micro-batch acceptance shape over the TPC-H views ----------------

tpch::Config SmallConfig() {
  tpch::Config config;
  config.scale_factor = 0.001;
  config.seed = 11;
  return config;
}

ViewManager MakeThreeViewManager(const tpch::Config& config) {
  Catalog catalog = tpch::MakeCatalog(tpch::Generate(config)).value();
  PlanPtr v1 = tpch::View1(catalog, config.max_line_numbers).value();
  PlanPtr v2 = tpch::View2(catalog, config.max_line_numbers, 30000.0).value();
  PlanPtr v3 =
      tpch::View3(catalog, config.first_year, config.num_years).value();
  ViewManager manager(std::move(catalog));
  EXPECT_TRUE(manager.DefineView("v1", v1, RefreshStrategy::kUpdate).ok());
  EXPECT_TRUE(
      manager.DefineView("v2", v2, RefreshStrategy::kCombinedSelect).ok());
  EXPECT_TRUE(
      manager.DefineView("v3", v3, RefreshStrategy::kCombinedGroupBy).ok());
  return manager;
}

// Churn batches as in bench_micro_batch: batch b inserts chunk b of a
// new-key workload and retracts chunk b-1.
std::vector<SourceDeltas> ChurnBatches(const ViewManager& manager,
                                       const tpch::Config& config,
                                       size_t num_batches) {
  SourceDeltas workload =
      tpch::MakeLineitemInsertsNewKeys(manager.catalog(), config, 0.06, 42)
          .value();
  const Table& inserts = workload.at("lineitem").inserts;
  const std::vector<Row>& rows = inserts.rows();
  size_t n = rows.size();
  EXPECT_GE(n, num_batches);
  std::vector<SourceDeltas> batches;
  for (size_t b = 0; b < num_batches; ++b) {
    Delta delta = Delta::Empty(inserts.schema());
    for (size_t i = b * n / num_batches; i < (b + 1) * n / num_batches; ++i) {
      delta.inserts.AddRow(rows[i]);
    }
    if (b > 0) {
      for (size_t i = (b - 1) * n / num_batches; i < b * n / num_batches;
           ++i) {
        delta.deletes.AddRow(rows[i]);
      }
    }
    SourceDeltas deltas;
    deltas.emplace("lineitem", std::move(delta));
    batches.push_back(std::move(deltas));
  }
  return batches;
}

TEST(DeltaBatcherTest, BatchedBeatsOneByOneOnPropagatedRowsAndEpochs) {
  tpch::Config config = SmallConfig();
  constexpr size_t kBatches = 4;

  obs::MetricsRegistry sequential_metrics;
  sequential_metrics.set_enabled(true);
  ViewManager sequential = MakeThreeViewManager(config);
  ExecContext sequential_ctx;
  sequential_ctx.metrics = &sequential_metrics;
  sequential.set_exec_context(sequential_ctx);
  std::vector<SourceDeltas> batches =
      ChurnBatches(sequential, config, kBatches);
  for (const SourceDeltas& batch : batches) {
    ASSERT_OK(sequential.ApplyUpdate(batch));
  }
  ASSERT_EQ(sequential.LastEpochReport()->seq, kBatches);

  obs::MetricsRegistry batched_metrics;
  batched_metrics.set_enabled(true);
  ViewManager batched = MakeThreeViewManager(config);
  ExecContext batched_ctx;
  batched_ctx.metrics = &batched_metrics;
  batched.set_exec_context(batched_ctx);
  DeltaBatcher batcher(&batched);
  for (const SourceDeltas& batch : batches) {
    ASSERT_OK(batcher.Ingest(batch));
  }
  ASSERT_OK(batcher.Flush());
  // Fewer epochs: one committed flush vs kBatches one-by-one epochs.
  ASSERT_EQ(batched.LastEpochReport()->seq, 1u);

  // Identical final state (bag semantics; physical row order is the one
  // freedom compaction takes), independently audited.
  ASSERT_OK(sequential.Audit());
  ASSERT_OK(batched.Audit());
  for (const char* name : {"v1", "v2", "v3"}) {
    EXPECT_TRUE(BagEqual(sequential.GetView(name).value()->table(),
                         batched.GetView(name).value()->table()))
        << "view '" << name << "' diverged";
  }
  EXPECT_TRUE(sequential.catalog().GetTable("lineitem").value()->BagEquals(
      *batched.catalog().GetTable("lineitem").value()));

  // Strictly fewer propagated Δ/∇ rows: the churn cancels before the single
  // propagation instead of being paid kBatches times.
  auto counters_of = [](const obs::MetricsRegistry& registry) {
    return registry.Snapshot().counters;
  };
  auto seq_counters = counters_of(sequential_metrics);
  auto bat_counters = counters_of(batched_metrics);
  uint64_t seq_rows = seq_counters["ivm.propagate.insert_rows"] +
                      seq_counters["ivm.propagate.delete_rows"];
  uint64_t bat_rows = bat_counters["ivm.propagate.insert_rows"] +
                      bat_counters["ivm.propagate.delete_rows"];
  EXPECT_LT(bat_rows, seq_rows);
  EXPECT_LT(bat_counters["ivm.propagate.calls"],
            seq_counters["ivm.propagate.calls"]);
  EXPECT_GT(bat_counters["ivm.batcher.rows_cancelled"], 0u);
}

TEST(ViewManagerNoOpTest, AllEmptyBatchShortCircuitsBeforeStaging) {
  ViewManager manager = MakePivotManager();
  // A staging pass traverses fault points; a short-circuited no-op must
  // traverse none.
  FaultInjector::Global().StartCounting();
  SourceDeltas empty_map;
  ASSERT_OK(manager.ApplyUpdate(empty_map));
  SourceDeltas empty_tables;
  empty_tables.emplace("Items", ItemsDelta(manager));
  ASSERT_OK(manager.ApplyUpdate(empty_tables));
  ASSERT_OK(manager.RefreshViews(empty_tables));
  ASSERT_OK(manager.AdvanceBase(empty_tables));
  EXPECT_EQ(FaultInjector::Global().Disarm(), 0u)
      << "no-op epochs still traversed maintenance fault points";
  ASSERT_TRUE(manager.LastEpochReport().has_value());
  EXPECT_EQ(manager.LastEpochReport()->outcome, "no_op");
  EXPECT_EQ(manager.LastEpochReport()->entry, "advance_base");
  EXPECT_EQ(manager.LastEpochReport()->seq, 0u);
  EXPECT_TRUE(manager.LastEpochReport()->views.empty());
  // The named-but-empty table still shows up in the record's delta summary.
  ASSERT_EQ(manager.LastEpochReport()->deltas.size(), 1u);
  EXPECT_EQ(manager.LastEpochReport()->deltas[0].table, "Items");

  // A real epoch after the no-ops gets seq 1: no numbers were burned.
  Delta real = ItemsDelta(manager);
  real.inserts.AddRow({I(2), S("Type"), S("DVD")});
  ASSERT_OK(manager.ApplyUpdate(ItemsBatch(std::move(real))));
  EXPECT_EQ(manager.LastEpochReport()->seq, 1u);
  EXPECT_EQ(manager.LastEpochReport()->outcome, "committed");
}

TEST(ViewManagerNoOpTest, EmptySideSchemaMismatchRejected) {
  // Regression for ValidateDeltas: an empty delete side with a mismatching
  // schema used to pass validation; the batcher can merge that schema into
  // a non-empty side of a later flush, so it must be rejected up front.
  ViewManager manager = MakePivotManager();
  Delta delta = ItemsDelta(manager);
  delta.inserts.AddRow({I(2), S("Type"), S("DVD")});
  delta.deletes = Table(Schema({{"wrong", DataType::kInt64}}));  // empty, wrong
  Status st = manager.ApplyUpdate(ItemsBatch(std::move(delta)));
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("empty"), std::string::npos) << st.ToString();
  EXPECT_EQ(manager.LastEpochReport()->outcome, "rejected");
}

}  // namespace
}  // namespace gpivot
