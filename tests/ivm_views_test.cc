// End-to-end incremental maintenance tests: every refresh strategy applied
// to the paper's three experiment views must leave the materialized view
// identical to recomputing the (effective) view query from scratch.
#include <gtest/gtest.h>

#include "algebra/plan.h"
#include "ivm/maintenance.h"
#include "ivm/view_manager.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/views.h"

namespace gpivot {
namespace {

using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;
using testing::BagEqual;

tpch::Config SmallConfig() {
  tpch::Config config;
  config.scale_factor = 0.001;  // ~150 customers, 1500 orders, ~5k lines
  config.seed = 7;
  return config;
}

enum class DeltaKind { kDelete, kInsertUpdates, kInsertNew, kInsertMixed };

const char* DeltaKindName(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kDelete:
      return "Delete";
    case DeltaKind::kInsertUpdates:
      return "InsertUpdates";
    case DeltaKind::kInsertNew:
      return "InsertNew";
    case DeltaKind::kInsertMixed:
      return "InsertMixed";
  }
  return "?";
}

SourceDeltas MakeDeltas(const Catalog& catalog, const tpch::Config& config,
                        DeltaKind kind, double fraction, uint64_t seed) {
  switch (kind) {
    case DeltaKind::kDelete:
      return tpch::MakeLineitemDeletes(catalog, fraction, seed).value();
    case DeltaKind::kInsertUpdates:
      return tpch::MakeLineitemInsertsUpdatesOnly(catalog, config, fraction,
                                                  seed)
          .value();
    case DeltaKind::kInsertNew:
      return tpch::MakeLineitemInsertsNewKeys(catalog, config, fraction, seed)
          .value();
    case DeltaKind::kInsertMixed:
      return tpch::MakeLineitemInsertsMixed(catalog, config, fraction, seed)
          .value();
  }
  return {};
}

struct Scenario {
  int view;  // 1, 2, 3
  RefreshStrategy strategy;
  DeltaKind delta_kind;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  return std::string("View") + std::to_string(info.param.view) + "_" +
         RefreshStrategyToString(info.param.strategy) + "_" +
         DeltaKindName(info.param.delta_kind);
}

class ViewMaintenanceTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ViewMaintenanceTest, IncrementalMatchesRecompute) {
  const Scenario& scenario = GetParam();
  tpch::Config config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(Catalog catalog,
                       tpch::MakeCatalog(tpch::Generate(config)));

  PlanPtr query;
  switch (scenario.view) {
    case 1: {
      ASSERT_OK_AND_ASSIGN(query,
                           tpch::View1(catalog, config.max_line_numbers));
      break;
    }
    case 2: {
      ASSERT_OK_AND_ASSIGN(
          query, tpch::View2(catalog, config.max_line_numbers, 30000.0));
      break;
    }
    case 3: {
      ASSERT_OK_AND_ASSIGN(
          query, tpch::View3(catalog, config.first_year, config.num_years));
      break;
    }
    default:
      FAIL() << "unknown view";
  }

  ViewManager manager(std::move(catalog));
  ASSERT_OK(manager.DefineView("v", query, scenario.strategy));

  // Three consecutive delta batches: maintenance must stay consistent
  // across refreshes, not just for one batch.
  for (uint64_t round = 0; round < 3; ++round) {
    SourceDeltas deltas = MakeDeltas(manager.catalog(), config,
                                     scenario.delta_kind, 0.04,
                                     1000 + round * 17);
    ASSERT_OK(manager.ApplyUpdate(deltas));
    ASSERT_OK_AND_ASSIGN(const ivm::MaterializedView* view,
                         manager.GetView("v"));
    ASSERT_OK_AND_ASSIGN(Table recomputed, manager.RecomputeFromScratch("v"));
    ASSERT_TRUE(BagEqual(recomputed, view->table()))
        << "round " << round << " strategy "
        << RefreshStrategyToString(scenario.strategy);
  }
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  auto add = [&scenarios](int view, std::vector<RefreshStrategy> strategies) {
    for (RefreshStrategy strategy : strategies) {
      for (DeltaKind kind :
           {DeltaKind::kDelete, DeltaKind::kInsertUpdates,
            DeltaKind::kInsertNew, DeltaKind::kInsertMixed}) {
        scenarios.push_back({view, strategy, kind});
      }
    }
  };
  add(1, {RefreshStrategy::kFullRecompute, RefreshStrategy::kInsertDelete,
          RefreshStrategy::kUpdate});
  add(2, {RefreshStrategy::kFullRecompute, RefreshStrategy::kInsertDelete,
          RefreshStrategy::kSelectPushdownUpdate,
          RefreshStrategy::kCombinedSelect});
  add(3, {RefreshStrategy::kFullRecompute, RefreshStrategy::kUpdate,
          RefreshStrategy::kCombinedGroupBy});
  return scenarios;
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ViewMaintenanceTest,
                         ::testing::ValuesIn(AllScenarios()), ScenarioName);

// Mixed insert+delete batches in a single refresh.
TEST(ViewMaintenanceMixedTest, SimultaneousInsertAndDelete) {
  tpch::Config config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(Catalog catalog,
                       tpch::MakeCatalog(tpch::Generate(config)));
  ASSERT_OK_AND_ASSIGN(PlanPtr query,
                       tpch::View1(catalog, config.max_line_numbers));
  ViewManager manager(std::move(catalog));
  ASSERT_OK(manager.DefineView("v", query, RefreshStrategy::kUpdate));

  SourceDeltas deletes =
      tpch::MakeLineitemDeletes(manager.catalog(), 0.03, 5).value();
  SourceDeltas inserts =
      tpch::MakeLineitemInsertsNewKeys(manager.catalog(), config, 0.03, 6)
          .value();
  SourceDeltas combined = deletes;
  ivm::Delta& lineitem = combined.at("lineitem");
  for (const Row& row : inserts.at("lineitem").inserts.rows()) {
    lineitem.inserts.AddRow(row);
  }
  ASSERT_OK(manager.ApplyUpdate(combined));
  ASSERT_OK_AND_ASSIGN(const ivm::MaterializedView* view,
                       manager.GetView("v"));
  ASSERT_OK_AND_ASSIGN(Table recomputed, manager.RecomputeFromScratch("v"));
  EXPECT_TRUE(BagEqual(recomputed, view->table()));
}

}  // namespace
}  // namespace gpivot
