// Concurrency stress for the serving layer, written to run clean under
// ThreadSanitizer (the CI tsan job includes this suite): four reader
// threads hammer Acquire / QueryService while the main thread drives a
// deterministic schedule of committed, rolled-back (fault-injected), and
// no-op epochs. Every snapshot a reader observes must be byte-identical to
// the view state at some *committed* epoch — precomputed on a scratch
// manager before any thread starts — and rolled-back seqs must never be
// observable.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/gpivot.h"
#include "expr/expr.h"
#include "ivm/view_manager.h"
#include "obs/metrics.h"
#include "serve/query.h"
#include "serve/snapshot.h"
#include "test_util.h"
#include "util/fault_injection.h"

namespace gpivot {
namespace {

using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;
using serve::QueryService;
using serve::ReaderHandle;
using serve::ServeOptions;
using serve::Snapshot;
using serve::SnapshotStore;
using testing::I;
using testing::MakeTable;
using testing::S;

constexpr size_t kReaders = 4;
constexpr size_t kEpochSchedule = 24;  // mixed commit / rollback / no-op

Catalog PivotCatalog() {
  Catalog catalog;
  Table items = MakeTable({{"ID", DataType::kInt64},
                           {"Attribute", DataType::kString},
                           {"Value", DataType::kString}},
                          {{I(1), S("Manu"), S("Sony")},
                           {I(1), S("Type"), S("TV")},
                           {I(2), S("Manu"), S("Panasonic")}});
  EXPECT_TRUE(items.SetKey({"ID", "Attribute"}).ok());
  Table payment = MakeTable(
      {{"ID", DataType::kInt64}, {"Price", DataType::kInt64}},
      {{I(1), I(200)}, {I(2), I(300)}});
  EXPECT_TRUE(payment.SetKey({"ID"}).ok());
  EXPECT_TRUE(catalog.AddTable("Items", std::move(items)).ok());
  EXPECT_TRUE(catalog.AddTable("Payment", std::move(payment)).ok());
  return catalog;
}

ViewManager MakePivotManager() {
  Catalog catalog = PivotCatalog();
  PlanPtr items = MakeScan(catalog, "Items").value();
  PlanPtr payment = MakeScan(catalog, "Payment").value();
  PivotSpec spec;
  spec.pivot_by = {"Attribute"};
  spec.pivot_on = {"Value"};
  spec.combos = {{S("Manu")}, {S("Type")}};
  PlanPtr view = MakeJoin(MakeGPivot(items, spec), payment, {"ID"});
  ViewManager manager(std::move(catalog));
  EXPECT_TRUE(manager.DefineView("v", view, RefreshStrategy::kUpdate).ok());
  return manager;
}

// Step `i` of the schedule. kCommit churns item 2's Type attribute (so the
// view changes every committed epoch); kRollback attempts the same delta
// under an armed fault; kNoOp flushes an empty batch.
enum class StepKind { kCommit, kRollback, kNoOp };

StepKind StepAt(size_t i) {
  if (i % 4 == 2) return StepKind::kRollback;
  if (i % 4 == 3) return StepKind::kNoOp;
  return StepKind::kCommit;
}

SourceDeltas ChurnDelta(const ViewManager& manager, size_t step) {
  ivm::Delta delta = ivm::Delta::Empty(
      manager.catalog().GetTable("Items").value()->schema());
  // Retract the previous committed churn row, if any, then set a new one.
  size_t committed_before = 0;
  for (size_t j = 0; j < step; ++j) {
    if (StepAt(j) == StepKind::kCommit) ++committed_before;
  }
  if (committed_before > 0) {
    std::string prev = "v" + std::to_string(committed_before - 1);
    delta.deletes.AddRow({I(2), S("Type"), S(prev.c_str())});
  }
  std::string next = "v" + std::to_string(committed_before);
  delta.inserts.AddRow({I(2), S("Type"), S(next.c_str())});
  return SourceDeltas{{"Items", std::move(delta)}};
}

// Runs the schedule on `manager` without any serving layer and records the
// exact view rows after every committed epoch, keyed by seq.
struct ExpectedStates {
  std::map<uint64_t, std::vector<Row>> by_seq;  // committed seqs only
};

ExpectedStates ComputeExpected() {
  ViewManager manager = MakePivotManager();
  ExpectedStates expected;
  expected.by_seq[0] = manager.GetView("v").value()->table().rows();
  for (size_t i = 0; i < kEpochSchedule; ++i) {
    switch (StepAt(i)) {
      case StepKind::kCommit:
        EXPECT_TRUE(manager.ApplyUpdate(ChurnDelta(manager, i)).ok());
        expected.by_seq[manager.epoch_seq()] =
            manager.GetView("v").value()->table().rows();
        break;
      case StepKind::kRollback: {
        FaultInjector::Global().Arm(1);
        EXPECT_FALSE(manager.ApplyUpdate(ChurnDelta(manager, i)).ok());
        FaultInjector::Global().Disarm();
        break;
      }
      case StepKind::kNoOp:
        EXPECT_TRUE(manager.ApplyUpdate(SourceDeltas{}).ok());
        break;
    }
  }
  return expected;
}

struct ReaderResult {
  std::atomic<uint64_t> iterations{0};
  std::atomic<uint64_t> distinct_seqs{0};
  std::atomic<uint64_t> failures{0};
  std::string first_failure;  // written once, read after join
};

void ReaderLoop(const SnapshotStore* store, const ExpectedStates* expected,
                ReaderHandle* handle, const std::atomic<bool>* done,
                ReaderResult* result) {
  // Per-reader metrics keep counter traffic off the global registry.
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  ExecContext ctx;
  ctx.metrics = &metrics;
  QueryService service(store, ctx);
  ExprPtr scan_predicate = Gt(Col("Price"), Lit(int64_t{250}));

  std::vector<uint64_t> seen;
  auto fail = [&](std::string why) {
    if (result->failures.fetch_add(1) == 0) {
      result->first_failure = std::move(why);
    }
  };

  while (!done->load(std::memory_order_acquire) ||
         result->iterations.load(std::memory_order_relaxed) == 0) {
    std::shared_ptr<const Snapshot> snapshot = store->Acquire("v", handle);
    if (snapshot == nullptr) {
      fail("Acquire returned null");
      break;
    }
    uint64_t seq = snapshot->epoch_seq();
    auto it = expected->by_seq.find(seq);
    if (it == expected->by_seq.end()) {
      fail("observed non-committed epoch seq " + std::to_string(seq));
    } else if (snapshot->table().rows() != it->second) {
      fail("snapshot rows diverge from committed state at seq " +
           std::to_string(seq));
    }

    // Exercise the query surface against the same pinned version.
    auto scan = service.Scan("v", scan_predicate, handle);
    if (!scan.ok()) fail("Scan failed: " + scan.status().ToString());
    auto topk = service.TopK("v", "Price", 1, handle);
    if (!topk.ok()) {
      fail("TopK failed: " + topk.status().ToString());
    } else if (topk->num_rows() != 1) {
      fail("TopK row count");
    }

    if (std::find(seen.begin(), seen.end(), seq) == seen.end()) {
      seen.push_back(seq);
      result->distinct_seqs.store(seen.size(), std::memory_order_relaxed);
    }
    result->iterations.fetch_add(1, std::memory_order_release);
  }
}

TEST(ServeStressTest, ReadersSeeOnlyCommittedEpochsUnderChurn) {
  ExpectedStates expected = ComputeExpected();
  ASSERT_GE(expected.by_seq.size(), 4u);

  ViewManager manager = MakePivotManager();
  ServeOptions options;
  options.max_pinned_epochs = kReaders + 1;
  SnapshotStore store(&manager, options);
  ASSERT_OK(store.Attach());

  std::atomic<bool> done{false};
  std::vector<ReaderHandle*> handles;
  for (size_t r = 0; r < kReaders; ++r) {
    ASSERT_OK_AND_ASSIGN(ReaderHandle * handle, store.RegisterReader());
    handles.push_back(handle);
  }

  std::vector<ReaderResult> results(kReaders);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back(ReaderLoop, &store, &expected, handles[r], &done,
                         &results[r]);
  }

  // Writer: same schedule as the scratch run, but now pacing each step so
  // every reader completes at least two acquires against the new head
  // before the next epoch — guaranteeing genuine read/write overlap on
  // every committed version instead of racing through the schedule.
  auto wait_for_overlap = [&]() {
    std::vector<uint64_t> marks(kReaders);
    for (size_t r = 0; r < kReaders; ++r) {
      marks[r] = results[r].iterations.load(std::memory_order_acquire);
    }
    for (size_t r = 0; r < kReaders; ++r) {
      while (results[r].iterations.load(std::memory_order_acquire) <
             marks[r] + 2) {
        std::this_thread::yield();
      }
    }
  };

  for (size_t i = 0; i < kEpochSchedule; ++i) {
    switch (StepAt(i)) {
      case StepKind::kCommit:
        ASSERT_OK(manager.ApplyUpdate(ChurnDelta(manager, i)));
        break;
      case StepKind::kRollback:
        FaultInjector::Global().Arm(1);
        EXPECT_FALSE(manager.ApplyUpdate(ChurnDelta(manager, i)).ok());
        FaultInjector::Global().Disarm();
        break;
      case StepKind::kNoOp:
        ASSERT_OK(manager.ApplyUpdate(SourceDeltas{}));
        break;
    }
    wait_for_overlap();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  for (size_t r = 0; r < kReaders; ++r) {
    EXPECT_EQ(results[r].failures.load(), 0u)
        << "reader " << r << ": " << results[r].first_failure;
    // Paced overlap means every reader ran against several distinct
    // committed versions, not just the final one.
    EXPECT_GE(results[r].distinct_seqs.load(), 4u) << "reader " << r;
    EXPECT_GT(results[r].iterations.load(), 0u) << "reader " << r;
  }

  for (ReaderHandle* handle : handles) store.UnregisterReader(handle);
  store.FlushRetired();
  EXPECT_EQ(store.retired_count(), 0u);
}

TEST(ServeStressTest, HandleLessReadersShareLockedPathWithWriter) {
  // The slow path serializes on the writer's retire mutex; run it
  // concurrently with installs to give TSan a look at that pairing too.
  ViewManager manager = MakePivotManager();
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  SnapshotStore store(&manager, ServeOptions{}, &metrics);
  ASSERT_OK(store.Attach());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> bad{0};
  std::atomic<uint64_t> reads{0};
  std::thread reader([&]() {
    while (!done.load(std::memory_order_acquire)) {
      std::shared_ptr<const Snapshot> snapshot = store.Acquire("v", nullptr);
      if (snapshot == nullptr || snapshot->table().empty()) {
        bad.fetch_add(1);
      }
      reads.fetch_add(1, std::memory_order_release);
    }
  });

  for (size_t i = 0; i < kEpochSchedule; ++i) {
    if (StepAt(i) != StepKind::kCommit) continue;
    // Pace so each install overlaps live slow-path reads.
    uint64_t mark = reads.load(std::memory_order_acquire);
    ASSERT_OK(manager.ApplyUpdate(ChurnDelta(manager, i)));
    while (reads.load(std::memory_order_acquire) < mark + 2) {
      std::this_thread::yield();
    }
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(metrics.Snapshot().counters.at("serve.read.locks"), 0u);
}

TEST(ServeStressTest, ConcurrentOutOfOrderCommitHooksKeepHeadsMonotone) {
  // Sharded commit pipelines can deliver OnEpochCommitted from pool
  // threads in any order. Hammer the hook concurrently with interleaved
  // seqs while readers acquire: heads must only ever move forward (each
  // reader's observed seq sequence is non-decreasing), and the store must
  // settle on the highest seq delivered — TSan watches the hook's
  // retire-mutex pairing against the lock-free read path throughout.
  ViewManager manager = MakePivotManager();
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  ServeOptions options;
  options.max_pinned_epochs = kReaders + 1;
  SnapshotStore store(&manager, options, &metrics);
  ASSERT_OK(store.Attach());

  // Advance the manager once so installed snapshots carry real state; the
  // fabricated seqs below stand in for per-shard commit notifications that
  // all describe this same view state.
  ASSERT_OK(manager.ApplyUpdate(ChurnDelta(manager, 0)));
  constexpr uint64_t kMaxSeq = 64;
  constexpr size_t kHookThreads = 3;

  std::atomic<bool> done{false};
  std::vector<ReaderHandle*> handles;
  for (size_t r = 0; r < kReaders; ++r) {
    ASSERT_OK_AND_ASSIGN(ReaderHandle * handle, store.RegisterReader());
    handles.push_back(handle);
  }
  std::vector<std::atomic<uint64_t>> regressions(kReaders);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r]() {
      uint64_t last = 0;
      while (!done.load(std::memory_order_acquire)) {
        std::shared_ptr<const Snapshot> snapshot =
            store.Acquire("v", handles[r]);
        if (snapshot == nullptr) continue;
        if (snapshot->epoch_seq() < last) regressions[r].fetch_add(1);
        last = snapshot->epoch_seq();
      }
    });
  }

  std::vector<std::thread> hooks;
  for (size_t t = 0; t < kHookThreads; ++t) {
    hooks.emplace_back([&, t]() {
      // Thread t delivers seqs t+1, t+1+kHookThreads, ... — collectively
      // a shuffled interleaving of 1..kMaxSeq across threads.
      for (uint64_t seq = t + 1; seq <= kMaxSeq; seq += kHookThreads) {
        ivm::EpochRecord record;
        record.seq = seq;
        record.entry = "apply_update";
        record.outcome = "committed";
        store.OnEpochCommitted(record);
      }
    });
  }
  for (std::thread& t : hooks) t.join();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(store.last_committed_seq(), kMaxSeq);
  for (size_t r = 0; r < kReaders; ++r) {
    EXPECT_EQ(regressions[r].load(), 0u)
        << "reader " << r << " observed the head moving backwards";
  }
  // Out-of-order deliveries were really dropped, not installed: installs
  // plus skips account for every notification.
  auto counters = metrics.Snapshot().counters;
  uint64_t installs = counters.at("serve.snapshot.installs");
  uint64_t skips = counters.count("serve.snapshot.stale_skips") > 0
                       ? counters.at("serve.snapshot.stale_skips")
                       : 0;
  // Attach + the real epoch + the fabricated stream.
  EXPECT_EQ(installs + skips, 2u + kMaxSeq);
  EXPECT_GT(skips, 0u) << "interleaving never produced a stale delivery";

  for (ReaderHandle* handle : handles) store.UnregisterReader(handle);
  store.FlushRetired();
  EXPECT_EQ(store.retired_count(), 0u);
}

}  // namespace
}  // namespace gpivot
