// Tracer contract tests: thread-local span nesting, deterministic sibling
// ordering via explicit parent/order keys, and well-formed Chrome-trace
// JSON (the file-writing test doubles as CI's trace-validity check).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json_util.h"
#include "obs/trace.h"

namespace gpivot {
namespace {

using obs::IsValidJson;
using obs::ScopedSpan;
using obs::SpanId;
using obs::TraceEnabled;
using obs::Tracer;

TEST(TracerTest, ScopedSpansNestViaThreadLocalCurrent) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan outer(&tracer, "outer");
    {
      ScopedSpan inner(&tracer, "inner");
      ScopedSpan grandchild(&tracer, "leaf");
    }
    ScopedSpan sibling(&tracer, "sibling");
  }
  ScopedSpan root2(&tracer, "root2");
  EXPECT_EQ(tracer.ToSpanTree(),
            "outer\n"
            "  inner\n"
            "    leaf\n"
            "  sibling\n"
            "root2\n");
}

TEST(TracerTest, AttrsAppearInTree) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan span(&tracer, "HashJoin");
    span.AddAttr("build_rows", uint64_t{80});
    span.AddAttr("type", "Inner");
  }
  EXPECT_EQ(tracer.ToSpanTree(), "HashJoin build_rows=80 type=Inner\n");
}

TEST(TracerTest, ExplicitParentAndOrderSortSiblings) {
  // Simulates the per-view fan-out: children created out of order (as a
  // parallel schedule would) but carrying explicit order keys come back in
  // key order, ahead of creation-ordered siblings.
  Tracer tracer;
  tracer.set_enabled(true);
  SpanId parent = tracer.BeginSpan("stage");
  SpanId late = tracer.BeginSpan("stage:v3", parent, 2);
  SpanId early = tracer.BeginSpan("stage:v1", parent, 0);
  SpanId mid = tracer.BeginSpan("stage:v2", parent, 1);
  SpanId implicit = tracer.BeginSpan("extra", parent);
  tracer.EndSpan(late);
  tracer.EndSpan(early);
  tracer.EndSpan(mid);
  tracer.EndSpan(implicit);
  tracer.EndSpan(parent);
  EXPECT_EQ(tracer.ToSpanTree(),
            "stage\n"
            "  stage:v1\n"
            "  stage:v2\n"
            "  stage:v3\n"
            "  extra\n");
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(TraceEnabled(&tracer));
  EXPECT_FALSE(TraceEnabled(nullptr));
  {
    ScopedSpan span(&tracer, "ignored");
    EXPECT_FALSE(span.active());
    span.AddAttr("k", "v");
  }
  { ScopedSpan null_span(nullptr, "ignored"); }
  EXPECT_EQ(tracer.num_spans(), 0u);
  EXPECT_EQ(tracer.ToSpanTree(), "");
}

TEST(TracerTest, ScopedSpanRestoresPreviousCurrent) {
  Tracer tracer;
  tracer.set_enabled(true);
  ScopedSpan outer(&tracer, "outer");
  EXPECT_EQ(tracer.CurrentSpan(), outer.id());
  {
    ScopedSpan inner(&tracer, "inner");
    EXPECT_EQ(tracer.CurrentSpan(), inner.id());
  }
  EXPECT_EQ(tracer.CurrentSpan(), outer.id());
}

TEST(TracerTest, ClearDropsSpansAndToleratesOpenHandles) {
  Tracer tracer;
  tracer.set_enabled(true);
  SpanId open = tracer.BeginSpan("open");
  tracer.Clear();
  EXPECT_EQ(tracer.num_spans(), 0u);
  tracer.EndSpan(open);  // span id no longer exists; must not crash
  tracer.AddAttr(open, "k", "v");
  EXPECT_EQ(tracer.num_spans(), 0u);
}

TEST(TracerTest, ChromeTraceJsonIsValidAndEscaped) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan span(&tracer, "tricky \"name\"\nwith\\escapes");
    span.AddAttr("key \"q\"", "value\twith\ttabs");
    ScopedSpan child(&tracer, "child");
  }
  std::string json = tracer.ToChromeTraceJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(TracerTest, EmptyTraceIsValidJson) {
  Tracer tracer;
  EXPECT_TRUE(IsValidJson(tracer.ToChromeTraceJson()));
}

// CI runs this test against the trace file a smoke bench just produced
// being the same code path: WriteChromeTrace output read back from disk
// must parse as JSON.
TEST(TracerTest, WrittenTraceFileIsValidJson) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan epoch(&tracer, "epoch");
    ScopedSpan stage(&tracer, "stage");
    ScopedSpan view(&tracer, "stage:v1");
    view.AddAttr("rows_out", uint64_t{7});
  }
  std::string path = ::testing::TempDir() + "/gpivot_trace_test.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_TRUE(IsValidJson(contents.str())) << contents.str();
  std::remove(path.c_str());
}

TEST(TracerTest, WriteChromeTraceFailsOnBadPath) {
  Tracer tracer;
  EXPECT_FALSE(tracer.WriteChromeTrace("/nonexistent-dir/trace.json"));
}

}  // namespace
}  // namespace gpivot
