// Property tests for the paper's GPIVOT rewrite rules (§4, §5.1, §5.2):
// every rule application must leave the plan's result unchanged (modulo
// column order, which rewrites may permute).
#include "rewrite/rules.h"

#include <gtest/gtest.h>

#include "algebra/plan.h"
#include "core/gpivot.h"
#include "test_util.h"
#include "util/random.h"
#include "util/string_util.h"

namespace gpivot {
namespace {

using rewrite::AdjacentPivotVerdict;
using testing::BagEqualModuloColumnOrder;
using testing::I;
using testing::MakeTable;
using testing::RandomVerticalSpec;
using testing::RandomVerticalTable;
using testing::S;

// Shared fixture: a catalog with one random vertical table "v" per trial.
class RuleTest : public ::testing::Test {
 protected:
  // Builds a catalog whose table "v" has (k, a1..am, b1..bn) and key
  // (k, a1..am). Returns the scan.
  PlanPtr FreshScan(size_t num_dims, size_t num_measures, Rng* rng,
                    double null_fraction = 0.1) {
    RandomVerticalSpec spec;
    spec.num_dims = num_dims;
    spec.num_measures = num_measures;
    spec.null_fraction = null_fraction;
    spec.num_rows = 80;
    catalog_ = Catalog();
    Status st = catalog_.AddTable("v", RandomVerticalTable(spec, rng));
    GPIVOT_CHECK(st.ok()) << st.ToString();
    return MakeScan(catalog_, "v").value();
  }

  PivotSpec MakePivot(size_t num_dims, size_t num_measures,
                      int alphabet = 2) {
    PivotSpec spec;
    for (size_t d = 0; d < num_dims; ++d) {
      spec.pivot_by.push_back(StrCat("a", d + 1));
    }
    for (size_t b = 0; b < num_measures; ++b) {
      spec.pivot_on.push_back(StrCat("b", b + 1));
    }
    std::vector<std::vector<Value>> dims;
    for (size_t d = 0; d < num_dims; ++d) {
      std::vector<Value> values;
      for (int a = 0; a < alphabet; ++a) values.push_back(S(StrCat("v", a).c_str()));
      dims.push_back(values);
    }
    spec.combos = PivotSpec::CrossProduct(dims);
    return spec;
  }

  void ExpectEquivalent(const PlanPtr& original, const PlanPtr& rewritten) {
    ASSERT_OK_AND_ASSIGN(Table expected, Evaluate(original, catalog_));
    ASSERT_OK_AND_ASSIGN(Table actual, Evaluate(rewritten, catalog_));
    EXPECT_TRUE(BagEqualModuloColumnOrder(expected, actual))
        << "original:\n" << PlanToString(original) << "rewritten:\n"
        << PlanToString(rewritten);
  }

  Catalog catalog_;
};

// ---- Eq. 5: multicolumn pivot ---------------------------------------------

TEST_F(RuleTest, Eq5CombineMulticolumnPivots) {
  Rng rng(501);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr scan = FreshScan(1, 2, &rng);
    PivotSpec left = MakePivot(1, 1);
    PivotSpec right = left;
    right.pivot_on = {"b2"};
    // Each side pivots a projection π_{K,A,Bi}(v) (the paper's Eq. 5 form).
    PlanPtr left_plan =
        MakeGPivot(MakeProject(scan, {"k", "a1", "b1"}), left);
    PlanPtr right_plan =
        MakeGPivot(MakeProject(scan, {"k", "a1", "b2"}), right);
    PlanPtr join = MakeJoin(left_plan, right_plan, {"k"});
    ASSERT_OK_AND_ASSIGN(PlanPtr combined,
                         rewrite::CombineMulticolumnPivots(join));
    EXPECT_EQ(combined->kind(), PlanKind::kGPivot);
    ExpectEquivalent(join, combined);
  }
}

TEST_F(RuleTest, Eq5RequiresSameCombos) {
  Rng rng(502);
  PlanPtr scan = FreshScan(1, 2, &rng);
  PivotSpec left = MakePivot(1, 1);
  PivotSpec right = left;
  right.pivot_on = {"b2"};
  right.combos = {{S("v0")}};  // different output params
  PlanPtr join = MakeJoin(MakeGPivot(MakeProject(scan, {"k", "a1", "b1"}), left),
                          MakeGPivot(MakeProject(scan, {"k", "a1", "b2"}), right),
                          {"k"});
  EXPECT_TRUE(rewrite::CombineMulticolumnPivots(join).status()
                  .IsNotApplicable());
}

// ---- Eq. 6: pivot composition ---------------------------------------------

TEST_F(RuleTest, Eq6ComposeAdjacentPivots) {
  Rng rng(601);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr scan = FreshScan(2, 2, &rng);
    // Inner pivots by a2; outer pivots the inner cells by a1 (Fig. 6).
    PivotSpec inner = MakePivot(1, 2);
    inner.pivot_by = {"a2"};
    PlanPtr inner_plan = MakeGPivot(scan, inner);
    PivotSpec outer;
    outer.pivot_by = {"a1"};
    outer.pivot_on = inner.OutputColumnNames();
    outer.combos = {{S("v0")}, {S("v1")}};
    PlanPtr outer_plan = MakeGPivot(inner_plan, outer);

    ASSERT_OK_AND_ASSIGN(auto verdict,
                         rewrite::ClassifyAdjacentPivots(outer_plan));
    EXPECT_EQ(verdict, AdjacentPivotVerdict::kComposable);
    ASSERT_OK_AND_ASSIGN(PlanPtr composed,
                         rewrite::ComposeAdjacentPivots(outer_plan));
    EXPECT_EQ(composed->kind(), PlanKind::kGPivot);
    EXPECT_EQ(static_cast<const GPivotNode*>(composed.get())
                  ->spec()
                  .num_dimensions(),
              2u);
    ExpectEquivalent(outer_plan, composed);
  }
}

// §4.2.3 Fig. 7 cases: classification of non-composable adjacent pivots.
TEST_F(RuleTest, Fig7Case2LeftoverCellsViolateKey) {
  Rng rng(602);
  PlanPtr scan = FreshScan(1, 2, &rng);
  PivotSpec inner = MakePivot(1, 2);
  PlanPtr inner_plan = MakeGPivot(scan, inner);
  // Outer pivots only half the cells: the rest would join the key.
  PivotSpec outer;
  outer.pivot_by = {"k"};
  outer.pivot_on = {inner.OutputColumnName(0, 0)};
  outer.combos = {{I(1)}, {I(2)}};
  PlanPtr outer_plan = MakeGPivot(inner_plan, outer);
  ASSERT_OK_AND_ASSIGN(auto verdict,
                       rewrite::ClassifyAdjacentPivots(outer_plan));
  EXPECT_EQ(verdict, AdjacentPivotVerdict::kKeyViolation);
}

TEST_F(RuleTest, Fig7Case3CellAsDimensionLosesNames) {
  Rng rng(603);
  PlanPtr scan = FreshScan(1, 1, &rng);
  PivotSpec inner = MakePivot(1, 1);
  PlanPtr inner_plan = MakeGPivot(scan, inner);
  // Outer uses one cell as a dimension and the other as measure.
  PivotSpec outer;
  outer.pivot_by = {inner.OutputColumnName(0, 0)};
  outer.pivot_on = {inner.OutputColumnName(1, 0)};
  outer.combos = {{I(5)}};
  PlanPtr outer_plan = MakeGPivot(inner_plan, outer);
  ASSERT_OK_AND_ASSIGN(auto verdict,
                       rewrite::ClassifyAdjacentPivots(outer_plan));
  EXPECT_EQ(verdict, AdjacentPivotVerdict::kNameLoss);
}

TEST_F(RuleTest, Fig7Case4ExtraMeasuresBreakStructure) {
  Rng rng(604);
  PlanPtr scan = FreshScan(2, 1, &rng);
  PivotSpec inner = MakePivot(1, 1);
  inner.pivot_by = {"a2"};
  PlanPtr inner_plan = MakeGPivot(scan, inner);
  // Outer pivots the cells *plus* an unrelated column.
  PivotSpec outer;
  outer.pivot_by = {"a1"};
  outer.pivot_on = inner.OutputColumnNames();
  outer.pivot_on.push_back("k");
  outer.combos = {{S("v0")}};
  PlanPtr outer_plan = MakeGPivot(inner_plan, outer);
  ASSERT_OK_AND_ASSIGN(auto verdict,
                       rewrite::ClassifyAdjacentPivots(outer_plan));
  EXPECT_EQ(verdict, AdjacentPivotVerdict::kStructureMismatch);
}

// ---- §4.3 splits ------------------------------------------------------------

TEST_F(RuleTest, SplitByMeasuresRoundTrips) {
  Rng rng(431);
  for (int trial = 0; trial < 3; ++trial) {
    PlanPtr scan = FreshScan(1, 3, &rng);
    PlanPtr pivot = MakeGPivot(scan, MakePivot(1, 3));
    ASSERT_OK_AND_ASSIGN(PlanPtr split,
                         rewrite::SplitPivotByMeasures(pivot, 1));
    EXPECT_EQ(split->kind(), PlanKind::kJoin);
    ExpectEquivalent(pivot, split);
  }
}

TEST_F(RuleTest, SplitByDimensionsRoundTrips) {
  Rng rng(432);
  for (int trial = 0; trial < 3; ++trial) {
    PlanPtr scan = FreshScan(2, 2, &rng);
    PlanPtr pivot = MakeGPivot(scan, MakePivot(2, 2));
    ASSERT_OK_AND_ASSIGN(PlanPtr split,
                         rewrite::SplitPivotByDimensions(pivot, 1));
    EXPECT_EQ(split->kind(), PlanKind::kGPivot);
    // The split form is a composition; composing it back must also work.
    ASSERT_OK_AND_ASSIGN(PlanPtr recomposed,
                         rewrite::ComposeAdjacentPivots(split));
    ExpectEquivalent(pivot, split);
    ExpectEquivalent(pivot, recomposed);
  }
}

TEST_F(RuleTest, SplitByDimensionsRejectsPartialCross) {
  Rng rng(433);
  PlanPtr scan = FreshScan(2, 1, &rng);
  PivotSpec spec = MakePivot(2, 1);
  spec.combos.pop_back();  // no longer a full cross product
  PlanPtr pivot = MakeGPivot(scan, spec);
  EXPECT_TRUE(rewrite::SplitPivotByDimensions(pivot, 1).status()
                  .IsNotApplicable());
}

// ---- §5.1.1: σ over key columns commutes ------------------------------------

TEST_F(RuleTest, PullPivotThroughSelectOnKey) {
  Rng rng(511);
  for (int trial = 0; trial < 3; ++trial) {
    PlanPtr scan = FreshScan(1, 2, &rng);
    PlanPtr pivot = MakeGPivot(scan, MakePivot(1, 2));
    PlanPtr select = MakeSelect(pivot, Gt(Col("k"), Lit(int64_t{5})));
    ASSERT_OK_AND_ASSIGN(PlanPtr pulled,
                         rewrite::PullPivotThroughSelect(select));
    EXPECT_EQ(pulled->kind(), PlanKind::kGPivot);
    ExpectEquivalent(select, pulled);
  }
}

TEST_F(RuleTest, PullPivotThroughSelectRejectsCellConditions) {
  Rng rng(512);
  PlanPtr scan = FreshScan(1, 1, &rng);
  PivotSpec spec = MakePivot(1, 1);
  PlanPtr pivot = MakeGPivot(scan, spec);
  PlanPtr select = MakeSelect(
      pivot, Gt(Col(spec.OutputColumnName(0, 0)), Lit(int64_t{100})));
  EXPECT_TRUE(
      rewrite::PullPivotThroughSelect(select).status().IsNotApplicable());
}

// ---- Eq. 7: σ over pivoted cells becomes a self-join below ------------------

TEST_F(RuleTest, Eq7PushSelectBelowPivotSingleCell) {
  Rng rng(701);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr scan = FreshScan(1, 2, &rng);
    PivotSpec spec = MakePivot(1, 2);
    PlanPtr pivot = MakeGPivot(scan, spec);
    PlanPtr select = MakeSelect(
        pivot, Gt(Col(spec.OutputColumnName(0, 0)), Lit(int64_t{300})));
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushSelectBelowPivot(select));
    EXPECT_EQ(pushed->kind(), PlanKind::kGPivot);
    ExpectEquivalent(select, pushed);
  }
}

TEST_F(RuleTest, Eq7SamePrefixTwoCells) {
  Rng rng(702);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr scan = FreshScan(1, 2, &rng);
    PivotSpec spec = MakePivot(1, 2);
    PlanPtr pivot = MakeGPivot(scan, spec);
    // b1-cell < b2-cell, both under the same combo prefix.
    PlanPtr select = MakeSelect(pivot, Lt(Col(spec.OutputColumnName(1, 0)),
                                          Col(spec.OutputColumnName(1, 1))));
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushSelectBelowPivot(select));
    ExpectEquivalent(select, pushed);
  }
}

TEST_F(RuleTest, Eq7DifferentPrefixesSelfJoin) {
  // The general Eq. 7 form: a comparison across two prefixes turns into a
  // self-join of two per-combo selections.
  Rng rng(703);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr scan = FreshScan(1, 2, &rng);
    PivotSpec spec = MakePivot(1, 2);
    PlanPtr pivot = MakeGPivot(scan, spec);
    PlanPtr select = MakeSelect(pivot, Lt(Col(spec.OutputColumnName(0, 0)),
                                          Col(spec.OutputColumnName(1, 1))));
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushSelectBelowPivot(select));
    EXPECT_EQ(pushed->kind(), PlanKind::kGPivot);
    ExpectEquivalent(select, pushed);
  }
}

TEST_F(RuleTest, Eq7ConjunctionAcrossPrefixesNotApplicable) {
  // Conjunctions across prefixes would need one self-join per prefix; the
  // maintenance framework prefers the Fig. 29 pairing instead (§6.3.2).
  Rng rng(704);
  PlanPtr scan = FreshScan(1, 1, &rng);
  PivotSpec spec = MakePivot(1, 1);
  PlanPtr pivot = MakeGPivot(scan, spec);
  PlanPtr select = MakeSelect(
      pivot, And(Gt(Col(spec.OutputColumnName(0, 0)), Lit(int64_t{10})),
                 Gt(Col(spec.OutputColumnName(1, 0)), Lit(int64_t{10}))));
  EXPECT_TRUE(
      rewrite::PushSelectBelowPivot(select).status().IsNotApplicable());
}

// ---- §5.1.2: project --------------------------------------------------------

TEST_F(RuleTest, PullPivotThroughProjectDroppingNonKey) {
  Rng rng(5121);
  for (int trial = 0; trial < 3; ++trial) {
    // Extra non-key column: extend the random table with a payload column
    // that is functionally irrelevant.
    RandomVerticalSpec vspec;
    vspec.num_dims = 1;
    vspec.num_measures = 2;
    Table v = RandomVerticalTable(vspec, &rng);
    Table extended{Schema({{"k", DataType::kInt64},
                           {"payload", DataType::kInt64},
                           {"a1", DataType::kString},
                           {"b1", DataType::kInt64},
                           {"b2", DataType::kInt64}})};
    for (const Row& row : v.rows()) {
      extended.AddRow({row[0], Value::Int(row[0].AsInt() * 7), row[1], row[2],
                       row[3]});
    }
    ASSERT_OK(extended.SetKey({"k", "a1"}));
    catalog_ = Catalog();
    ASSERT_OK(catalog_.AddTable("v", std::move(extended)));
    ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog_, "v"));

    PlanPtr pivot = MakeGPivot(scan, MakePivot(1, 2));
    PlanPtr project = MakeDrop(pivot, {"payload"});
    ASSERT_OK_AND_ASSIGN(PlanPtr pulled,
                         rewrite::PullPivotThroughProject(project));
    EXPECT_EQ(pulled->kind(), PlanKind::kGPivot);
    ExpectEquivalent(project, pulled);
  }
}

TEST_F(RuleTest, PullPivotThroughProjectRejectsCellDrop) {
  Rng rng(5122);
  PlanPtr scan = FreshScan(1, 1, &rng);
  PivotSpec spec = MakePivot(1, 1);
  PlanPtr pivot = MakeGPivot(scan, spec);
  PlanPtr project = MakeDrop(pivot, {spec.OutputColumnName(0, 0)});
  EXPECT_TRUE(
      rewrite::PullPivotThroughProject(project).status().IsNotApplicable());
}

TEST_F(RuleTest, PullPivotThroughProjectRejectsKeyDrop) {
  Rng rng(5123);
  PlanPtr scan = FreshScan(1, 1, &rng);
  PlanPtr pivot = MakeGPivot(scan, MakePivot(1, 1));
  PlanPtr project = MakeDrop(pivot, {"k"});
  EXPECT_TRUE(
      rewrite::PullPivotThroughProject(project).status().IsNotApplicable());
}

// ---- §5.1.3: join -----------------------------------------------------------

TEST_F(RuleTest, PullPivotThroughJoinLeft) {
  Rng rng(513);
  for (int trial = 0; trial < 3; ++trial) {
    PlanPtr scan = FreshScan(1, 2, &rng);
    // Dimension-style table keyed on k.
    Table dim{Schema({{"k", DataType::kInt64}, {"label", DataType::kString}})};
    for (int64_t k = 1; k <= 12; ++k) {
      dim.AddRow({I(k), S(StrCat("label", k % 3).c_str())});
    }
    ASSERT_OK(dim.SetKey({"k"}));
    ASSERT_OK(catalog_.AddTable("dim", std::move(dim)));
    ASSERT_OK_AND_ASSIGN(PlanPtr dim_scan, MakeScan(catalog_, "dim"));

    PlanPtr pivot = MakeGPivot(scan, MakePivot(1, 2));
    PlanPtr join = MakeJoin(pivot, dim_scan, {"k"});
    ASSERT_OK_AND_ASSIGN(PlanPtr pulled, rewrite::PullPivotThroughJoin(join));
    EXPECT_EQ(pulled->kind(), PlanKind::kGPivot);
    ExpectEquivalent(join, pulled);
  }
}

TEST_F(RuleTest, PullPivotThroughJoinRight) {
  Rng rng(514);
  PlanPtr scan = FreshScan(1, 1, &rng);
  Table dim{Schema({{"k", DataType::kInt64}, {"label", DataType::kString}})};
  for (int64_t k = 1; k <= 12; ++k) {
    dim.AddRow({I(k), S(StrCat("label", k % 4).c_str())});
  }
  ASSERT_OK(dim.SetKey({"k"}));
  ASSERT_OK(catalog_.AddTable("dim", std::move(dim)));
  ASSERT_OK_AND_ASSIGN(PlanPtr dim_scan, MakeScan(catalog_, "dim"));

  PlanPtr pivot = MakeGPivot(scan, MakePivot(1, 1));
  PlanPtr join = MakeJoin(dim_scan, pivot, {"k"});
  ASSERT_OK_AND_ASSIGN(PlanPtr pulled, rewrite::PullPivotThroughJoin(join));
  EXPECT_EQ(pulled->kind(), PlanKind::kGPivot);
  ExpectEquivalent(join, pulled);
}

TEST_F(RuleTest, PullPivotThroughJoinRejectsUnkeyedOther) {
  Rng rng(515);
  PlanPtr scan = FreshScan(1, 1, &rng);
  Table dim{Schema({{"k", DataType::kInt64}, {"label", DataType::kString}})};
  dim.AddRow({I(1), S("x")});
  dim.AddRow({I(1), S("y")});  // duplicate join keys, no declared key
  ASSERT_OK(catalog_.AddTable("dim", std::move(dim)));
  ASSERT_OK_AND_ASSIGN(PlanPtr dim_scan, MakeScan(catalog_, "dim"));
  PlanPtr pivot = MakeGPivot(scan, MakePivot(1, 1));
  PlanPtr join = MakeJoin(pivot, dim_scan, {"k"});
  EXPECT_TRUE(
      rewrite::PullPivotThroughJoin(join).status().IsNotApplicable());
}

// ---- Eq. 8: group-by --------------------------------------------------------

TEST_F(RuleTest, Eq8PullPivotThroughGroupBy) {
  Rng rng(801);
  for (int trial = 0; trial < 5; ++trial) {
    // Table (g, k, a1, b1): pivot by a1 on b1 keyed (g,k,a1), then group by
    // g aggregating every cell in place.
    RandomVerticalSpec vspec;
    vspec.num_dims = 1;
    vspec.num_measures = 1;
    Table v = RandomVerticalTable(vspec, &rng);
    Table extended{Schema({{"g", DataType::kInt64},
                           {"k", DataType::kInt64},
                           {"a1", DataType::kString},
                           {"b1", DataType::kInt64}})};
    for (const Row& row : v.rows()) {
      extended.AddRow({Value::Int(row[0].AsInt() % 3), row[0], row[1],
                       row[2]});
    }
    ASSERT_OK(extended.SetKey({"g", "k", "a1"}));
    catalog_ = Catalog();
    ASSERT_OK(catalog_.AddTable("v", std::move(extended)));
    ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog_, "v"));

    PivotSpec spec = MakePivot(1, 1);
    PlanPtr pivot = MakeGPivot(scan, spec);
    std::vector<AggSpec> aggs;
    for (const std::string& cell : spec.OutputColumnNames()) {
      aggs.push_back(AggSpec::Sum(cell, cell));
    }
    PlanPtr groupby = MakeGroupBy(pivot, {"g"}, aggs);
    ASSERT_OK_AND_ASSIGN(PlanPtr pulled,
                         rewrite::PullPivotThroughGroupBy(groupby));
    EXPECT_EQ(pulled->kind(), PlanKind::kGPivot);
    EXPECT_EQ(static_cast<const GPivotNode*>(pulled.get())->child()->kind(),
              PlanKind::kGroupBy);
    ExpectEquivalent(groupby, pulled);
  }
}

TEST_F(RuleTest, Eq8CountAggregates) {
  Rng rng(802);
  PlanPtr scan = FreshScan(1, 1, &rng, /*null_fraction=*/0.3);
  PivotSpec spec = MakePivot(1, 1);
  PlanPtr pivot = MakeGPivot(scan, spec);
  std::vector<AggSpec> aggs;
  for (const std::string& cell : spec.OutputColumnNames()) {
    aggs.push_back(AggSpec::Count(cell, cell));
  }
  // Group by nothing meaningful: k is the key; aggregate per k parity. The
  // pivot's K is just {k}, so group on k itself (identity grouping).
  PlanPtr groupby = MakeGroupBy(pivot, {"k"}, aggs);
  ASSERT_OK_AND_ASSIGN(PlanPtr pulled,
                       rewrite::PullPivotThroughGroupBy(groupby));
  ASSERT_OK_AND_ASSIGN(Table expected, Evaluate(groupby, catalog_));
  ASSERT_OK_AND_ASSIGN(Table actual, Evaluate(pulled, catalog_));
  EXPECT_TRUE(BagEqualModuloColumnOrder(expected, actual));
}

TEST_F(RuleTest, Eq8RejectsGroupingOnCells) {
  Rng rng(803);
  PlanPtr scan = FreshScan(1, 1, &rng);
  PivotSpec spec = MakePivot(1, 1);
  PlanPtr pivot = MakeGPivot(scan, spec);
  PlanPtr groupby =
      MakeGroupBy(pivot, {spec.OutputColumnName(0, 0)},
                  {AggSpec::Sum(spec.OutputColumnName(1, 0),
                                spec.OutputColumnName(1, 0))});
  EXPECT_TRUE(
      rewrite::PullPivotThroughGroupBy(groupby).status().IsNotApplicable());
}

// ---- Eq. 9 / Eq. 10: unpivot-of-pivot ---------------------------------------

TEST_F(RuleTest, Eq9CancelUnpivotOfPivot) {
  Rng rng(901);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr scan = FreshScan(2, 2, &rng, /*null_fraction=*/0.0);
    PivotSpec spec = MakePivot(2, 2);
    PlanPtr pivot = MakeGPivot(scan, spec);
    PlanPtr unpivot = MakeGUnpivot(pivot, UnpivotSpec::InverseOf(spec));
    ASSERT_OK_AND_ASSIGN(PlanPtr cancelled,
                         rewrite::CancelUnpivotOfPivot(unpivot));
    // The pivot pair is gone: only σ_s over the base remains (plus a π).
    EXPECT_EQ(cancelled->kind(), PlanKind::kProject);
    ExpectEquivalent(unpivot, cancelled);
  }
}

TEST_F(RuleTest, Eq10SwapUnpivotBelowPivot) {
  Rng rng(1001);
  for (int trial = 0; trial < 5; ++trial) {
    // Table (k, g1x, g1y, a1, b1): pivot by a1 on b1; unpivot (g1x, g1y).
    RandomVerticalSpec vspec;
    vspec.num_dims = 1;
    vspec.num_measures = 1;
    Table v = RandomVerticalTable(vspec, &rng);
    Table extended{Schema({{"k", DataType::kInt64},
                           {"g1x", DataType::kInt64},
                           {"g1y", DataType::kInt64},
                           {"a1", DataType::kString},
                           {"b1", DataType::kInt64}})};
    for (const Row& row : v.rows()) {
      extended.AddRow({row[0], Value::Int(row[0].AsInt() + 100),
                       Value::Int(row[0].AsInt() + 200), row[1], row[2]});
    }
    ASSERT_OK(extended.SetKey({"k", "a1"}));
    catalog_ = Catalog();
    ASSERT_OK(catalog_.AddTable("v", std::move(extended)));
    ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog_, "v"));

    PivotSpec spec = MakePivot(1, 1);
    PlanPtr pivot = MakeGPivot(scan, spec);
    UnpivotSpec unspec;
    unspec.name_columns = {"gname"};
    unspec.value_columns = {"gvalue"};
    unspec.groups = {{{S("x")}, {"g1x"}}, {{S("y")}, {"g1y"}}};
    PlanPtr unpivot = MakeGUnpivot(pivot, unspec);
    ASSERT_OK_AND_ASSIGN(PlanPtr swapped,
                         rewrite::SwapUnpivotBelowPivot(unpivot));
    ExpectEquivalent(unpivot, swapped);
  }
}

// ---- Eq. 11: push pivot below σ ---------------------------------------------

TEST_F(RuleTest, Eq11DimensionCondition) {
  Rng rng(1101);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr scan = FreshScan(1, 2, &rng);
    PlanPtr select = MakeSelect(scan, Eq(Col("a1"), Lit("v0")));
    PlanPtr pivot = MakeGPivot(select, MakePivot(1, 2));
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushPivotBelowSelect(pivot));
    EXPECT_EQ(pushed->kind(), PlanKind::kSelect);
    ExpectEquivalent(pivot, pushed);
  }
}

TEST_F(RuleTest, Eq11MeasureCondition) {
  Rng rng(1102);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr scan = FreshScan(1, 2, &rng);
    PlanPtr select = MakeSelect(scan, Gt(Col("b1"), Lit(int64_t{500})));
    PlanPtr pivot = MakeGPivot(select, MakePivot(1, 2));
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushPivotBelowSelect(pivot));
    ExpectEquivalent(pivot, pushed);
  }
}

TEST_F(RuleTest, Eq11CombinedCondition) {
  Rng rng(1103);
  for (int trial = 0; trial < 5; ++trial) {
    PlanPtr scan = FreshScan(1, 2, &rng);
    PlanPtr select = MakeSelect(
        scan, And(Eq(Col("a1"), Lit("v1")), Gt(Col("b2"), Lit(int64_t{200}))));
    PlanPtr pivot = MakeGPivot(select, MakePivot(1, 2));
    ASSERT_OK_AND_ASSIGN(PlanPtr pushed,
                         rewrite::PushPivotBelowSelect(pivot));
    ExpectEquivalent(pivot, pushed);
  }
}

TEST_F(RuleTest, Eq11KeyConditionCommutesUnchanged) {
  Rng rng(1104);
  PlanPtr scan = FreshScan(1, 1, &rng);
  PlanPtr select = MakeSelect(scan, Le(Col("k"), Lit(int64_t{6})));
  PlanPtr pivot = MakeGPivot(select, MakePivot(1, 1));
  ASSERT_OK_AND_ASSIGN(PlanPtr pushed, rewrite::PushPivotBelowSelect(pivot));
  EXPECT_EQ(pushed->kind(), PlanKind::kSelect);
  EXPECT_EQ(static_cast<const SelectNode*>(pushed.get())->child()->kind(),
            PlanKind::kGPivot);
  ExpectEquivalent(pivot, pushed);
}

// ---- Eq. 12: pivot-of-unpivot cancels ---------------------------------------

TEST_F(RuleTest, Eq12CancelPivotOfUnpivot) {
  Rng rng(1201);
  for (int trial = 0; trial < 5; ++trial) {
    // Build a pivoted table H by pivoting the random base first.
    PlanPtr scan = FreshScan(1, 2, &rng);
    PivotSpec spec = MakePivot(1, 2);
    PlanPtr h = MakeGPivot(scan, spec);
    PlanPtr unpivot = MakeGUnpivot(h, UnpivotSpec::InverseOf(spec));
    PlanPtr pivot_again = MakeGPivot(unpivot, spec);
    ASSERT_OK_AND_ASSIGN(PlanPtr cancelled,
                         rewrite::CancelPivotOfUnpivot(pivot_again));
    ExpectEquivalent(pivot_again, cancelled);
  }
}

}  // namespace
}  // namespace gpivot
