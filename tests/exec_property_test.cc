// Property tests for the physical operators: algebraic identities checked
// on randomized tables. These pin down the bag semantics the IVM layer's
// correctness arguments rely on.
#include <gtest/gtest.h>

#include "exec/basic_ops.h"
#include "exec/group_by.h"
#include "exec/join.h"
#include "test_util.h"
#include "util/random.h"

namespace gpivot {
namespace {

using testing::BagEqual;
using testing::I;
using testing::N;
using testing::S;

Table RandomTable(Rng* rng, size_t rows, int key_range,
                  double null_fraction) {
  Table t{Schema({{"k", DataType::kInt64},
                  {"g", DataType::kString},
                  {"v", DataType::kInt64}})};
  for (size_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(rng->Chance(null_fraction)
                      ? Value::Null()
                      : Value::Int(rng->Int(1, key_range)));
    row.push_back(Value::Str(std::string(1, 'a' + rng->Int(0, 3))));
    row.push_back(rng->Chance(null_fraction) ? Value::Null()
                                             : Value::Int(rng->Int(0, 99)));
    t.AddRow(std::move(row));
  }
  return t;
}

class ExecPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<uint64_t>(GetParam() * 7919 + 13)};
};

TEST_P(ExecPropertyTest, UnionThenDifferenceRoundTrips) {
  Table a = RandomTable(&rng_, 40, 10, 0.1);
  Table b = RandomTable(&rng_, 25, 10, 0.1);
  ASSERT_OK_AND_ASSIGN(Table merged, exec::UnionAll(a, b));
  ASSERT_OK_AND_ASSIGN(Table back, exec::BagDifference(merged, b));
  EXPECT_TRUE(BagEqual(a, back));
}

TEST_P(ExecPropertyTest, SelectPartitionsTheBag) {
  Table t = RandomTable(&rng_, 60, 10, 0.2);
  ExprPtr pred = Ge(Col("v"), Lit(int64_t{50}));
  ASSERT_OK_AND_ASSIGN(Table yes, exec::Select(t, pred));
  // The complement must account for NULLs: NOT(v>=50) OR v IS NULL.
  ASSERT_OK_AND_ASSIGN(Table no, exec::Select(t, Or(Not(pred),
                                                    IsNull(Col("v")))));
  ASSERT_OK_AND_ASSIGN(Table rejoined, exec::UnionAll(yes, no));
  EXPECT_TRUE(BagEqual(t, rejoined));
}

TEST_P(ExecPropertyTest, InnerJoinCardinalityViaCounts) {
  Table a = RandomTable(&rng_, 50, 6, 0.1);
  Table b = RandomTable(&rng_, 30, 6, 0.1);
  exec::JoinSpec spec;
  spec.left_keys = {"k"};
  spec.right_keys = {"k"};
  // Rename b's payload to avoid collisions.
  ASSERT_OK_AND_ASSIGN(Table b2, exec::RenameColumns(b, {{"g", "g2"},
                                                         {"v", "v2"}}));
  ASSERT_OK_AND_ASSIGN(Table joined, exec::HashJoin(a, b2, spec));
  // Expected cardinality: sum over k of count_a(k) * count_b(k), NULL keys
  // excluded.
  std::unordered_map<int64_t, size_t> ca, cb;
  for (const Row& row : a.rows()) {
    if (!row[0].is_null()) ++ca[row[0].AsInt()];
  }
  for (const Row& row : b.rows()) {
    if (!row[0].is_null()) ++cb[row[0].AsInt()];
  }
  size_t expected = 0;
  for (const auto& [k, n] : ca) {
    auto it = cb.find(k);
    if (it != cb.end()) expected += n * it->second;
  }
  EXPECT_EQ(joined.num_rows(), expected);
}

TEST_P(ExecPropertyTest, OuterJoinDecomposition) {
  // LEFT OUTER = INNER ⊎ (anti-join rows padded with ⊥).
  Table a = RandomTable(&rng_, 45, 8, 0.1);
  Table b = RandomTable(&rng_, 20, 8, 0.1);
  ASSERT_OK_AND_ASSIGN(Table b2, exec::RenameColumns(b, {{"g", "g2"},
                                                         {"v", "v2"}}));
  exec::JoinSpec inner;
  inner.left_keys = {"k"};
  inner.right_keys = {"k"};
  exec::JoinSpec outer = inner;
  outer.type = exec::JoinType::kLeftOuter;
  exec::JoinSpec anti = inner;
  anti.type = exec::JoinType::kLeftAnti;

  ASSERT_OK_AND_ASSIGN(Table inner_result, exec::HashJoin(a, b2, inner));
  ASSERT_OK_AND_ASSIGN(Table outer_result, exec::HashJoin(a, b2, outer));
  ASSERT_OK_AND_ASSIGN(Table anti_result, exec::HashJoin(a, b2, anti));

  Table padded(outer_result.schema());
  for (const Row& row : anti_result.rows()) {
    Row out = row;
    out.resize(outer_result.schema().num_columns(), Value::Null());
    padded.AddRow(std::move(out));
  }
  ASSERT_OK_AND_ASSIGN(Table recombined,
                       exec::UnionAll(inner_result, padded));
  EXPECT_TRUE(BagEqual(outer_result, recombined));
}

TEST_P(ExecPropertyTest, SemiPlusAntiCoversLeft) {
  Table a = RandomTable(&rng_, 50, 5, 0.15);
  Table b = RandomTable(&rng_, 15, 5, 0.15);
  exec::JoinSpec semi;
  semi.left_keys = {"k"};
  semi.right_keys = {"k"};
  semi.type = exec::JoinType::kLeftSemi;
  exec::JoinSpec anti = semi;
  anti.type = exec::JoinType::kLeftAnti;
  ASSERT_OK_AND_ASSIGN(Table s, exec::HashJoin(a, b, semi));
  ASSERT_OK_AND_ASSIGN(Table t, exec::HashJoin(a, b, anti));
  ASSERT_OK_AND_ASSIGN(Table both, exec::UnionAll(s, t));
  EXPECT_TRUE(BagEqual(a, both));
}

TEST_P(ExecPropertyTest, GroupBySumsMatchManualComputation) {
  Table t = RandomTable(&rng_, 80, 12, 0.2);
  ASSERT_OK_AND_ASSIGN(
      Table grouped,
      exec::GroupBy(t, {"g"}, {AggSpec::Sum("v", "total"),
                               AggSpec::Count("v", "cnt"),
                               AggSpec::CountStar("rows")}));
  std::unordered_map<std::string, int64_t> sum, cnt, rows;
  std::unordered_map<std::string, bool> any;
  for (const Row& row : t.rows()) {
    const std::string& g = row[1].AsString();
    ++rows[g];
    if (!row[2].is_null()) {
      sum[g] += row[2].AsInt();
      ++cnt[g];
      any[g] = true;
    }
  }
  EXPECT_EQ(grouped.num_rows(), rows.size());
  for (const Row& row : grouped.rows()) {
    const std::string& g = row[0].AsString();
    if (any[g]) {
      EXPECT_EQ(row[1], I(sum[g])) << g;
      EXPECT_EQ(row[2], I(cnt[g])) << g;
    } else {
      EXPECT_TRUE(row[1].is_null()) << g;  // ⊥, never 0 (paper convention)
      EXPECT_TRUE(row[2].is_null()) << g;
    }
    EXPECT_EQ(row[3], I(rows[g])) << g;
  }
}

TEST_P(ExecPropertyTest, GroupByIsPartitionOfRowCount) {
  Table t = RandomTable(&rng_, 70, 9, 0.1);
  ASSERT_OK_AND_ASSIGN(Table grouped,
                       exec::GroupBy(t, {"k", "g"},
                                     {AggSpec::CountStar("n")}));
  int64_t total = 0;
  for (const Row& row : grouped.rows()) total += row[2].AsInt();
  EXPECT_EQ(static_cast<size_t>(total), t.num_rows());
}

TEST_P(ExecPropertyTest, DistinctIsIdempotent) {
  Table t = RandomTable(&rng_, 60, 4, 0.3);
  ASSERT_OK_AND_ASSIGN(Table once, exec::Distinct(t));
  ASSERT_OK_AND_ASSIGN(Table twice, exec::Distinct(once));
  EXPECT_TRUE(BagEqual(once, twice));
  EXPECT_LE(once.num_rows(), t.num_rows());
}

TEST_P(ExecPropertyTest, SortPreservesBag) {
  Table t = RandomTable(&rng_, 50, 10, 0.2);
  ASSERT_OK_AND_ASSIGN(Table sorted, exec::SortBy(t, {"v", "k"}));
  EXPECT_TRUE(t.BagEquals(sorted));
  for (size_t i = 1; i < sorted.num_rows(); ++i) {
    const Value& prev = sorted.rows()[i - 1][2];
    const Value& cur = sorted.rows()[i][2];
    EXPECT_FALSE(cur < prev) << "row " << i;
  }
}

TEST_P(ExecPropertyTest, SemiJoinKeySetMatchesSemiJoin) {
  Table a = RandomTable(&rng_, 50, 8, 0.0);
  Table b = RandomTable(&rng_, 20, 8, 0.0);
  exec::JoinSpec semi;
  semi.left_keys = {"k"};
  semi.right_keys = {"k"};
  semi.type = exec::JoinType::kLeftSemi;
  ASSERT_OK_AND_ASSIGN(Table via_join, exec::HashJoin(a, b, semi));
  ASSERT_OK_AND_ASSIGN(auto keys, exec::CollectKeySet(b, {"k"}));
  ASSERT_OK_AND_ASSIGN(Table via_set, exec::SemiJoinKeySet(a, {"k"}, keys));
  EXPECT_TRUE(BagEqual(via_join, via_set));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace gpivot
