#include "core/gpivot.h"

#include <gtest/gtest.h>

#include "core/pivot_spec.h"
#include "exec/basic_ops.h"
#include "test_util.h"
#include "util/string_util.h"

namespace gpivot {
namespace {

using testing::BagEqual;
using testing::BagEqualModuloColumnOrder;
using testing::D;
using testing::I;
using testing::MakeTable;
using testing::N;
using testing::RandomVerticalSpec;
using testing::RandomVerticalTable;
using testing::S;

// The ItemInfo table of Fig. 1.
Table ItemInfoTable() {
  Table t = MakeTable({{"AuctionID", DataType::kInt64},
                       {"Attribute", DataType::kString},
                       {"Value", DataType::kString}},
                      {{I(1), S("Manufacturer"), S("Sony")},
                       {I(1), S("Type"), S("TV")},
                       {I(2), S("Manufacturer"), S("Panasonic")},
                       {I(3), S("Type"), S("VCR")},
                       {I(3), S("Color"), S("Black")}});
  EXPECT_TRUE(t.SetKey({"AuctionID", "Attribute"}).ok());
  return t;
}

TEST(SimplePivotTest, Figure1Pivot) {
  ASSERT_OK_AND_ASSIGN(
      Table pivoted,
      SimplePivot(ItemInfoTable(), "Attribute", "Value",
                  {S("Manufacturer"), S("Type")}));
  Table expected = MakeTable({{"AuctionID", DataType::kInt64},
                              {"Manufacturer", DataType::kString},
                              {"Type", DataType::kString}},
                             {{I(1), S("Sony"), S("TV")},
                              {I(2), S("Panasonic"), N()},
                              {I(3), N(), S("VCR")}});
  EXPECT_TRUE(BagEqual(expected, pivoted));
  EXPECT_EQ(pivoted.key(), std::vector<std::string>{"AuctionID"});
}

TEST(SimplePivotTest, Figure1UnpivotRoundTrip) {
  ASSERT_OK_AND_ASSIGN(
      Table pivoted,
      SimplePivot(ItemInfoTable(), "Attribute", "Value",
                  {S("Manufacturer"), S("Type")}));
  ASSERT_OK_AND_ASSIGN(Table unpivoted,
                       SimpleUnpivot(pivoted, {"Manufacturer", "Type"},
                                     "Attribute", "Value"));
  // The round trip recovers the listed attributes only ('Color' is gone).
  Table expected = MakeTable({{"AuctionID", DataType::kInt64},
                              {"Attribute", DataType::kString},
                              {"Value", DataType::kString}},
                             {{I(1), S("Manufacturer"), S("Sony")},
                              {I(1), S("Type"), S("TV")},
                              {I(2), S("Manufacturer"), S("Panasonic")},
                              {I(3), S("Type"), S("VCR")}});
  EXPECT_TRUE(BagEqual(expected, unpivoted));
}

// The sales table of Fig. 5.
Table SalesTable() {
  Table t = MakeTable({{"Country", DataType::kString},
                       {"Manu", DataType::kString},
                       {"Type", DataType::kString},
                       {"Price", DataType::kInt64},
                       {"Quantity", DataType::kInt64}},
                      {{S("USA"), S("Sony"), S("TV"), I(220), I(100)},
                       {S("USA"), S("Sony"), S("VCR"), I(250), I(50)},
                       {S("USA"), S("Panasonic"), S("TV"), I(205), I(120)},
                       {S("Japan"), S("Sony"), S("TV"), I(210), I(200)},
                       {S("Japan"), S("Panasonic"), S("VCR"), I(280), I(60)}});
  EXPECT_TRUE(t.SetKey({"Country", "Manu", "Type"}).ok());
  return t;
}

PivotSpec SalesSpec() {
  PivotSpec spec;
  spec.pivot_by = {"Manu", "Type"};
  spec.pivot_on = {"Price", "Quantity"};
  spec.combos = PivotSpec::CrossProduct(
      {{S("Sony"), S("Panasonic")}, {S("TV"), S("VCR")}});
  return spec;
}

TEST(GPivotTest, Figure5MultiDimensionMultiMeasure) {
  ASSERT_OK_AND_ASSIGN(Table pivoted, GPivot(SalesTable(), SalesSpec()));
  ASSERT_EQ(pivoted.schema().num_columns(), 1 + 4 * 2);
  EXPECT_EQ(pivoted.schema().column(1).name, "Sony**TV**Price");
  EXPECT_EQ(pivoted.schema().column(2).name, "Sony**TV**Quantity");
  EXPECT_EQ(pivoted.schema().column(7).name, "Panasonic**VCR**Price");
  Table expected = MakeTable(
      pivoted.schema().columns(),
      {{S("USA"), I(220), I(100), I(250), I(50), I(205), I(120), N(), N()},
       {S("Japan"), I(210), I(200), N(), N(), N(), N(), I(280), I(60)}});
  EXPECT_TRUE(BagEqual(expected, pivoted));
}

TEST(GPivotTest, Figure5UnpivotInverse) {
  ASSERT_OK_AND_ASSIGN(Table pivoted, GPivot(SalesTable(), SalesSpec()));
  UnpivotSpec inverse = UnpivotSpec::InverseOf(SalesSpec());
  ASSERT_OK_AND_ASSIGN(Table unpivoted, GUnpivot(pivoted, inverse));
  EXPECT_TRUE(BagEqualModuloColumnOrder(SalesTable(), unpivoted));
}

TEST(GPivotTest, UnlistedCombosAreIgnored) {
  PivotSpec spec;
  spec.pivot_by = {"Manu", "Type"};
  spec.pivot_on = {"Price", "Quantity"};
  spec.combos = {{S("Sony"), S("TV")}};
  ASSERT_OK_AND_ASSIGN(Table pivoted, GPivot(SalesTable(), spec));
  // Only countries with a (Sony, TV) row appear.
  ASSERT_EQ(pivoted.num_rows(), 2u);
}

TEST(GPivotTest, KeyViolationDetected) {
  Table t = MakeTable({{"k", DataType::kInt64},
                       {"a", DataType::kString},
                       {"b", DataType::kInt64}},
                      {{I(1), S("x"), I(10)}, {I(1), S("x"), I(20)}});
  PivotSpec spec;
  spec.pivot_by = {"a"};
  spec.pivot_on = {"b"};
  spec.combos = {{S("x")}};
  auto result = GPivot(t, spec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsConstraintViolation());
}

TEST(GPivotTest, ValidateRejectsMissingColumns) {
  PivotSpec spec;
  spec.pivot_by = {"nope"};
  spec.pivot_on = {"b"};
  spec.combos = {{S("x")}};
  auto result = GPivot(SalesTable(), spec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(GPivotTest, ValidateRejectsNullCombo) {
  PivotSpec spec;
  spec.pivot_by = {"Manu"};
  spec.pivot_on = {"Price"};
  spec.combos = {{N()}};
  auto result = GPivot(SalesTable(), spec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(GPivotTest, ValidateRejectsDuplicateCombo) {
  PivotSpec spec;
  spec.pivot_by = {"Manu"};
  spec.pivot_on = {"Price"};
  spec.combos = {{S("Sony")}, {S("Sony")}};
  auto result = GPivot(SalesTable(), spec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(GPivotTest, EmptyInputGivesEmptyOutput) {
  Table t{Schema({{"k", DataType::kInt64},
                  {"a", DataType::kString},
                  {"b", DataType::kInt64}})};
  PivotSpec spec;
  spec.pivot_by = {"a"};
  spec.pivot_on = {"b"};
  spec.combos = {{S("x")}};
  ASSERT_OK_AND_ASSIGN(Table pivoted, GPivot(t, spec));
  EXPECT_EQ(pivoted.num_rows(), 0u);
  EXPECT_EQ(pivoted.schema().num_columns(), 2u);
}

TEST(GUnpivotTest, SkipsAllNullGroups) {
  Table t = MakeTable({{"k", DataType::kInt64},
                       {"x**b1", DataType::kInt64},
                       {"y**b1", DataType::kInt64}},
                      {{I(1), I(10), N()}, {I(2), N(), N()}});
  UnpivotSpec spec;
  spec.name_columns = {"a"};
  spec.value_columns = {"b1"};
  spec.groups = {{{S("x")}, {"x**b1"}}, {{S("y")}, {"y**b1"}}};
  ASSERT_OK_AND_ASSIGN(Table unpivoted, GUnpivot(t, spec));
  Table expected = MakeTable({{"k", DataType::kInt64},
                              {"a", DataType::kString},
                              {"b1", DataType::kInt64}},
                             {{I(1), S("x"), I(10)}});
  EXPECT_TRUE(BagEqual(expected, unpivoted));
}

TEST(GUnpivotTest, PartiallyNullGroupSurvives) {
  Table t = MakeTable({{"k", DataType::kInt64},
                       {"x**b1", DataType::kInt64},
                       {"x**b2", DataType::kInt64}},
                      {{I(1), I(10), N()}});
  UnpivotSpec spec;
  spec.name_columns = {"a"};
  spec.value_columns = {"b1", "b2"};
  spec.groups = {{{S("x")}, {"x**b1", "x**b2"}}};
  ASSERT_OK_AND_ASSIGN(Table unpivoted, GUnpivot(t, spec));
  ASSERT_EQ(unpivoted.num_rows(), 1u);
  EXPECT_TRUE(unpivoted.rows()[0][3].is_null());
}

TEST(GUnpivotTest, RejectsReusedSourceColumn) {
  Table t = MakeTable({{"k", DataType::kInt64}, {"c", DataType::kInt64}},
                      {{I(1), I(10)}});
  UnpivotSpec spec;
  spec.name_columns = {"a"};
  spec.value_columns = {"b"};
  spec.groups = {{{S("x")}, {"c"}}, {{S("y")}, {"c"}}};
  auto result = GUnpivot(t, spec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(PivotNameTest, RoundTrip) {
  Row combo = {S("Sony"), S("TV")};
  std::string name = PivotColumnName(combo, "Price");
  EXPECT_EQ(name, "Sony**TV**Price");
  ASSERT_OK_AND_ASSIGN(auto parsed, ParsePivotColumnName(name, 2));
  EXPECT_EQ(parsed.first, (std::vector<std::string>{"Sony", "TV"}));
  EXPECT_EQ(parsed.second, "Price");
}

TEST(PivotNameTest, ParseRejectsWrongArity) {
  auto parsed = ParsePivotColumnName("Sony**TV**Price", 3);
  EXPECT_FALSE(parsed.ok());
}

// --- Property tests: GPivot equals the literal Eq. 3 composition ----------

struct ReferenceCase {
  size_t num_dims;
  size_t num_measures;
  double null_fraction;
};

class GPivotReferenceTest
    : public ::testing::TestWithParam<ReferenceCase> {};

TEST_P(GPivotReferenceTest, MatchesOuterJoinDefinition) {
  const ReferenceCase& param = GetParam();
  Rng rng(7 + param.num_dims * 31 + param.num_measures);
  for (int trial = 0; trial < 5; ++trial) {
    RandomVerticalSpec spec;
    spec.num_dims = param.num_dims;
    spec.num_measures = param.num_measures;
    spec.null_fraction = param.null_fraction;
    Table input = RandomVerticalTable(spec, &rng);

    PivotSpec pivot;
    for (size_t d = 0; d < param.num_dims; ++d) {
      pivot.pivot_by.push_back(StrCat("a", d + 1));
    }
    for (size_t b = 0; b < param.num_measures; ++b) {
      pivot.pivot_on.push_back(StrCat("b", b + 1));
    }
    std::vector<std::vector<Value>> dims(
        param.num_dims, {S("v0"), S("v1")});  // subset of the alphabet
    pivot.combos = PivotSpec::CrossProduct(dims);

    ASSERT_OK_AND_ASSIGN(Table fast, GPivot(input, pivot));
    ASSERT_OK_AND_ASSIGN(Table reference, GPivotReference(input, pivot));
    EXPECT_TRUE(BagEqual(reference, fast)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GPivotReferenceTest,
    ::testing::Values(ReferenceCase{1, 1, 0.0}, ReferenceCase{1, 1, 0.3},
                      ReferenceCase{1, 2, 0.1}, ReferenceCase{2, 1, 0.1},
                      ReferenceCase{2, 2, 0.2}, ReferenceCase{2, 3, 0.0},
                      ReferenceCase{3, 2, 0.1}));

// GUnpivot(GPivot(V)) recovers exactly the listed-combo rows whose
// measures are not all ⊥ (Eq. 9 seen as a data property).
class PivotRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PivotRoundTripTest, UnpivotRecoversListedRows) {
  Rng rng(101 + GetParam());
  RandomVerticalSpec spec;
  spec.num_dims = GetParam();
  spec.num_measures = 2;
  spec.null_fraction = 0.15;
  Table input = RandomVerticalTable(spec, &rng);

  PivotSpec pivot;
  for (size_t d = 0; d < spec.num_dims; ++d) {
    pivot.pivot_by.push_back(StrCat("a", d + 1));
  }
  pivot.pivot_on = {"b1", "b2"};
  std::vector<std::vector<Value>> dims(spec.num_dims,
                                       {S("v0"), S("v1"), S("v2")});
  pivot.combos = PivotSpec::CrossProduct(dims);

  ASSERT_OK_AND_ASSIGN(Table pivoted, GPivot(input, pivot));
  ASSERT_OK_AND_ASSIGN(
      Table unpivoted, GUnpivot(pivoted, UnpivotSpec::InverseOf(pivot)));

  // Expected: input rows whose measures are not all ⊥ (listed combos only —
  // the alphabet equals the combo list here).
  Table expected(input.schema());
  for (const Row& row : input.rows()) {
    bool all_null = true;
    for (size_t b = 0; b < 2; ++b) {
      if (!row[row.size() - 2 + b].is_null()) all_null = false;
    }
    if (!all_null) expected.AddRow(row);
  }
  EXPECT_TRUE(BagEqualModuloColumnOrder(expected, unpivoted));
}

INSTANTIATE_TEST_SUITE_P(Dims, PivotRoundTripTest, ::testing::Values(1, 2));

}  // namespace
}  // namespace gpivot
