// Unit tests for the serving layer (src/serve/): ServeOptions strict env
// parsing, snapshot install on Attach and on every committed epoch, the
// no-install guarantee for no-op/rejected/rolled-back epochs, O(1)
// pointer-sharing installs over copy-on-write views, reader slot
// registration bounds, hazard-deferred retirement, the locked slow path's
// serve.read.locks counter, and the QueryService lookup/scan/top-k surface.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/gpivot.h"
#include "expr/expr.h"
#include "ivm/view_manager.h"
#include "obs/metrics.h"
#include "serve/query.h"
#include "serve/snapshot.h"
#include "test_util.h"
#include "util/fault_injection.h"

namespace gpivot {
namespace {

using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;
using serve::QueryService;
using serve::ReaderHandle;
using serve::ServeOptions;
using serve::Snapshot;
using serve::SnapshotStore;
using testing::BagEqual;
using testing::I;
using testing::MakeTable;
using testing::S;

// Items ⋈ Payment pivot view, same shape the batcher tests use.
Catalog PivotCatalog() {
  Catalog catalog;
  Table items = MakeTable({{"ID", DataType::kInt64},
                           {"Attribute", DataType::kString},
                           {"Value", DataType::kString}},
                          {{I(1), S("Manu"), S("Sony")},
                           {I(1), S("Type"), S("TV")},
                           {I(2), S("Manu"), S("Panasonic")}});
  EXPECT_TRUE(items.SetKey({"ID", "Attribute"}).ok());
  Table payment = MakeTable(
      {{"ID", DataType::kInt64}, {"Price", DataType::kInt64}},
      {{I(1), I(200)}, {I(2), I(300)}});
  EXPECT_TRUE(payment.SetKey({"ID"}).ok());
  EXPECT_TRUE(catalog.AddTable("Items", std::move(items)).ok());
  EXPECT_TRUE(catalog.AddTable("Payment", std::move(payment)).ok());
  return catalog;
}

ViewManager MakePivotManager() {
  Catalog catalog = PivotCatalog();
  PlanPtr items = MakeScan(catalog, "Items").value();
  PlanPtr payment = MakeScan(catalog, "Payment").value();
  PivotSpec spec;
  spec.pivot_by = {"Attribute"};
  spec.pivot_on = {"Value"};
  spec.combos = {{S("Manu")}, {S("Type")}};
  PlanPtr view = MakeJoin(MakeGPivot(items, spec), payment, {"ID"});
  ViewManager manager(std::move(catalog));
  EXPECT_TRUE(manager.DefineView("v", view, RefreshStrategy::kUpdate).ok());
  return manager;
}

// One committed epoch: gives item `id` a new attribute row.
SourceDeltas ItemsInsert(const ViewManager& manager, int64_t id,
                         const char* attribute, const char* value) {
  ivm::Delta delta = ivm::Delta::Empty(
      manager.catalog().GetTable("Items").value()->schema());
  delta.inserts.AddRow({I(id), S(attribute), S(value)});
  SourceDeltas deltas;
  deltas.emplace("Items", std::move(delta));
  return deltas;
}

// RAII registration so a test body can return early on ASSERT failures.
class ScopedReader {
 public:
  explicit ScopedReader(SnapshotStore* store) : store_(store) {
    auto handle = store->RegisterReader();
    EXPECT_TRUE(handle.ok()) << handle.status().ToString();
    handle_ = handle.ok() ? *handle : nullptr;
  }
  ~ScopedReader() { store_->UnregisterReader(handle_); }
  ReaderHandle* get() const { return handle_; }

 private:
  SnapshotStore* store_;
  ReaderHandle* handle_ = nullptr;
};

TEST(ServeOptionsTest, FromEnvDefaultsAndStrictParse) {
  unsetenv("GPIVOT_SERVE_MAX_PINNED_EPOCHS");
  auto defaults = ServeOptions::FromEnv();
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults->max_pinned_epochs, 8u);

  setenv("GPIVOT_SERVE_MAX_PINNED_EPOCHS", "3", 1);
  auto three = ServeOptions::FromEnv();
  ASSERT_TRUE(three.ok());
  EXPECT_EQ(three->max_pinned_epochs, 3u);

  for (const char* bad : {"", "abc", "0", "-1", "3x", " 3", "3 "}) {
    setenv("GPIVOT_SERVE_MAX_PINNED_EPOCHS", bad, 1);
    EXPECT_FALSE(ServeOptions::FromEnv().ok())
        << "accepted '" << bad << "'";
  }
  unsetenv("GPIVOT_SERVE_MAX_PINNED_EPOCHS");
}

TEST(SnapshotStoreTest, AttachInstallsCurrentEpochForEveryView) {
  ViewManager manager = MakePivotManager();
  SnapshotStore store(&manager);
  ASSERT_OK(store.Attach());
  EXPECT_EQ(store.last_committed_seq(), 0u);
  EXPECT_EQ(store.view_names(), std::vector<std::string>{"v"});

  ScopedReader reader(&store);
  std::shared_ptr<const Snapshot> snapshot = store.Acquire("v", reader.get());
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->epoch_seq(), 0u);
  ASSERT_OK_AND_ASSIGN(const ivm::MaterializedView* view,
                       manager.GetView("v"));
  EXPECT_TRUE(BagEqual(view->table(), snapshot->table()));
  EXPECT_EQ(store.Acquire("nope", reader.get()), nullptr);
}

TEST(SnapshotStoreTest, AttachFailsWithoutViews) {
  ViewManager manager{Catalog()};
  SnapshotStore store(&manager);
  EXPECT_FALSE(store.Attach().ok());
}

TEST(SnapshotStoreTest, InstallSharesTableStorageWithView) {
  // Satellite check: installing a snapshot must not copy the view table —
  // the snapshot aliases the MaterializedView's current storage, so the
  // warm column cache is shared too.
  ViewManager manager = MakePivotManager();
  SnapshotStore store(&manager);
  ASSERT_OK(store.Attach());
  ScopedReader reader(&store);
  std::shared_ptr<const Snapshot> snapshot = store.Acquire("v", reader.get());
  ASSERT_NE(snapshot, nullptr);
  ASSERT_OK_AND_ASSIGN(const ivm::MaterializedView* view,
                       manager.GetView("v"));
  EXPECT_EQ(snapshot->shared_table().get(), view->shared_table().get());
}

TEST(SnapshotStoreTest, CommittedEpochInstallsNewVersionOldStaysPinned) {
  ViewManager manager = MakePivotManager();
  SnapshotStore store(&manager);
  ASSERT_OK(store.Attach());
  ScopedReader reader(&store);
  std::shared_ptr<const Snapshot> before = store.Acquire("v", reader.get());
  ASSERT_NE(before, nullptr);
  Table before_copy = before->table();

  ASSERT_OK(manager.ApplyUpdate(ItemsInsert(manager, 2, "Type", "DVD")));
  EXPECT_EQ(store.last_committed_seq(), 1u);

  std::shared_ptr<const Snapshot> after = store.Acquire("v", reader.get());
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->epoch_seq(), 1u);
  ASSERT_OK_AND_ASSIGN(const ivm::MaterializedView* view,
                       manager.GetView("v"));
  EXPECT_TRUE(BagEqual(view->table(), after->table()));

  // The pinned pre-epoch version is untouched: copy-on-write cloned the
  // view table under it instead of mutating in place.
  EXPECT_NE(before->shared_table().get(), after->shared_table().get());
  EXPECT_TRUE(BagEqual(before_copy, before->table()));
}

TEST(SnapshotStoreTest, NoOpRejectedAndRolledBackEpochsDoNotInstall) {
  ViewManager manager = MakePivotManager();
  SnapshotStore store(&manager);
  ASSERT_OK(store.Attach());
  ScopedReader reader(&store);

  // no_op: empty batch consumes no seq and must not reinstall.
  ASSERT_OK(manager.ApplyUpdate(SourceDeltas{}));
  EXPECT_EQ(store.last_committed_seq(), 0u);

  // rejected: unknown table. The epoch consumes a seq but commits nothing.
  SourceDeltas unknown;
  unknown.emplace("nope", ivm::Delta::Empty(Schema({{"x", DataType::kInt64}})));
  unknown.at("nope").inserts.AddRow({I(1)});
  EXPECT_FALSE(manager.ApplyUpdate(unknown).ok());
  EXPECT_EQ(manager.epoch_seq(), 1u);
  EXPECT_EQ(store.last_committed_seq(), 0u);

  // rolled_back: injected fault mid-commit. State rolls back, so the
  // serving head must keep pointing at the pre-epoch version.
  std::shared_ptr<const Snapshot> before = store.Acquire("v", reader.get());
  FaultInjector::Global().Arm(1);
  EXPECT_FALSE(
      manager.ApplyUpdate(ItemsInsert(manager, 2, "Type", "DVD")).ok());
  FaultInjector::Global().Disarm();
  EXPECT_TRUE(FaultInjector::Global().fired());
  EXPECT_EQ(store.last_committed_seq(), 0u);
  std::shared_ptr<const Snapshot> after = store.Acquire("v", reader.get());
  EXPECT_EQ(before.get(), after.get());
}

TEST(SnapshotStoreTest, ReaderSlotsAreBounded) {
  ViewManager manager = MakePivotManager();
  ServeOptions options;
  options.max_pinned_epochs = 2;
  SnapshotStore store(&manager, options);
  ASSERT_OK(store.Attach());

  ASSERT_OK_AND_ASSIGN(ReaderHandle* first, store.RegisterReader());
  ASSERT_OK_AND_ASSIGN(ReaderHandle* second, store.RegisterReader());
  EXPECT_NE(first, second);
  EXPECT_FALSE(store.RegisterReader().ok());
  store.UnregisterReader(first);
  ASSERT_OK_AND_ASSIGN(ReaderHandle* reused, store.RegisterReader());
  EXPECT_EQ(reused, first);
  store.UnregisterReader(second);
  store.UnregisterReader(reused);
}

TEST(SnapshotStoreTest, HazardProtectedVersionRetiresOnlyAfterRelease) {
  ViewManager manager = MakePivotManager();
  SnapshotStore store(&manager);
  ASSERT_OK(store.Attach());
  ScopedReader reader(&store);
  std::shared_ptr<const Snapshot> pinned = store.Acquire("v", reader.get());
  ASSERT_NE(pinned, nullptr);

  // Freeze a reader mid-Acquire: hazard published, upgrade not yet done.
  reader.get()->hazard.store(pinned.get(), std::memory_order_seq_cst);
  ASSERT_OK(manager.ApplyUpdate(ItemsInsert(manager, 2, "Type", "DVD")));
  // The install's hazard scan must keep the store's reference alive.
  EXPECT_EQ(store.retired_count(), 1u);

  reader.get()->hazard.store(nullptr, std::memory_order_seq_cst);
  store.FlushRetired();
  EXPECT_EQ(store.retired_count(), 0u);
  // The reader's own shared_ptr still pins the version.
  EXPECT_EQ(pinned->epoch_seq(), 0u);
}

TEST(SnapshotStoreTest, UnpinnedVersionRetiresAtNextInstall) {
  ViewManager manager = MakePivotManager();
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  SnapshotStore store(&manager, ServeOptions{}, &metrics);
  ASSERT_OK(store.Attach());
  ASSERT_OK(manager.ApplyUpdate(ItemsInsert(manager, 2, "Type", "DVD")));
  EXPECT_EQ(store.retired_count(), 0u);
  auto counters = metrics.Snapshot().counters;
  EXPECT_EQ(counters.at("serve.snapshot.installs"), 2u);  // Attach + epoch
  EXPECT_EQ(counters.at("serve.retire.count"), 1u);
}

TEST(SnapshotStoreTest, HandleLessAcquireTakesLockedSlowPath) {
  ViewManager manager = MakePivotManager();
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  SnapshotStore store(&manager, ServeOptions{}, &metrics);
  ASSERT_OK(store.Attach());
  std::shared_ptr<const Snapshot> snapshot = store.Acquire("v", nullptr);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->epoch_seq(), 0u);
  EXPECT_EQ(metrics.Snapshot().counters.at("serve.read.locks"), 1u);
}

TEST(SnapshotStoreTest, OutOfOrderCommitNotificationIsDropped) {
  // With per-shard commits running on pool threads, OnEpochCommitted calls
  // can reach the store out of epoch order. An older seq arriving after a
  // newer one must not move the head, regress last_committed_seq, or emit
  // install/retire traffic — it only counts serve.snapshot.stale_skips.
  ViewManager manager = MakePivotManager();
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  SnapshotStore store(&manager, ServeOptions{}, &metrics);
  ASSERT_OK(store.Attach());
  ScopedReader reader(&store);
  ASSERT_OK(manager.ApplyUpdate(ItemsInsert(manager, 2, "Type", "DVD")));
  ASSERT_OK(manager.ApplyUpdate(ItemsInsert(manager, 2, "Color", "Black")));
  EXPECT_EQ(store.last_committed_seq(), 2u);
  std::shared_ptr<const Snapshot> head = store.Acquire("v", reader.get());
  ASSERT_NE(head, nullptr);
  uint64_t installs_before =
      metrics.Snapshot().counters.at("serve.snapshot.installs");

  // Replay epoch 1's notification, as a late pool thread would deliver it.
  ivm::EpochRecord stale;
  stale.seq = 1;
  stale.entry = "apply_update";
  stale.outcome = "committed";
  store.OnEpochCommitted(stale);

  EXPECT_EQ(store.last_committed_seq(), 2u) << "stale seq regressed the head";
  std::shared_ptr<const Snapshot> after = store.Acquire("v", reader.get());
  EXPECT_EQ(head.get(), after.get()) << "stale install swapped the head";
  auto counters = metrics.Snapshot().counters;
  EXPECT_EQ(counters.at("serve.snapshot.stale_skips"), 1u);
  EXPECT_EQ(counters.at("serve.snapshot.installs"), installs_before)
      << "a dropped install still published snapshots";

  // A same-seq replay (duplicate notification) is equally stale.
  ivm::EpochRecord duplicate;
  duplicate.seq = 2;
  duplicate.entry = "apply_update";
  duplicate.outcome = "committed";
  store.OnEpochCommitted(duplicate);
  EXPECT_EQ(metrics.Snapshot().counters.at("serve.snapshot.stale_skips"), 2u);

  // The next genuinely newer epoch installs normally.
  ASSERT_OK(manager.ApplyUpdate(ItemsInsert(manager, 1, "Color", "Gray")));
  EXPECT_EQ(store.last_committed_seq(), 3u);
}

TEST(SnapshotStoreTest, ReAttachInstallsEvenAtAnAlreadySeenSeq) {
  // Attach's install is marked initial: a detach/re-attach cycle at the
  // same manager seq must refresh the heads (fresh slots have none), not
  // be dropped by the monotonicity guard.
  ViewManager manager = MakePivotManager();
  ASSERT_OK(manager.ApplyUpdate(ItemsInsert(manager, 2, "Type", "DVD")));
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  {
    SnapshotStore store(&manager, ServeOptions{}, &metrics);
    ASSERT_OK(store.Attach());
    EXPECT_EQ(store.last_committed_seq(), 1u);
    store.Detach();
    ASSERT_OK(store.Attach());
    EXPECT_EQ(store.last_committed_seq(), 1u);
    ScopedReader reader(&store);
    std::shared_ptr<const Snapshot> snapshot =
        store.Acquire("v", reader.get());
    ASSERT_NE(snapshot, nullptr);
    EXPECT_EQ(snapshot->epoch_seq(), 1u);
  }
  EXPECT_EQ(metrics.Snapshot().counters.count("serve.snapshot.stale_skips"),
            0u)
      << "re-attach was wrongly treated as a stale commit notification";
}

// ---- QueryService ---------------------------------------------------------

TEST(QueryServiceTest, PointLookupFindsAndMisses) {
  ViewManager manager = MakePivotManager();
  SnapshotStore store(&manager);
  ASSERT_OK(store.Attach());
  ScopedReader reader(&store);
  QueryService service(&store);

  ASSERT_OK_AND_ASSIGN(const ivm::MaterializedView* view,
                       manager.GetView("v"));
  ASSERT_GT(view->num_rows(), 0u);
  const Row& row = view->RowAt(0);
  Row key = ProjectRow(row, view->key_indices());

  ASSERT_OK_AND_ASSIGN(std::optional<Row> hit,
                       service.PointLookup("v", key, reader.get()));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, row);

  Row absent = key;
  absent[0] = I(999);
  ASSERT_OK_AND_ASSIGN(std::optional<Row> miss,
                       service.PointLookup("v", absent, reader.get()));
  EXPECT_FALSE(miss.has_value());

  EXPECT_TRUE(
      service.PointLookup("nope", key, reader.get()).status().IsNotFound());
}

TEST(QueryServiceTest, ScanFiltersAgainstOneSnapshot) {
  ViewManager manager = MakePivotManager();
  SnapshotStore store(&manager);
  ASSERT_OK(store.Attach());
  ScopedReader reader(&store);
  QueryService service(&store);

  ASSERT_OK_AND_ASSIGN(
      Table expensive,
      service.Scan("v", Gt(Col("Price"), Lit(int64_t{250})), reader.get()));
  ASSERT_EQ(expensive.num_rows(), 1u);
  size_t price = expensive.schema().ColumnIndexOrDie("Price");
  EXPECT_EQ(expensive.rows()[0][price], I(300));

  ASSERT_OK_AND_ASSIGN(
      Table all,
      service.Scan("v", Gt(Col("Price"), Lit(int64_t{0})), reader.get()));
  EXPECT_EQ(all.num_rows(), 2u);
}

TEST(QueryServiceTest, TopKOrdersDescendingAndSkipsNulls) {
  ViewManager manager = MakePivotManager();
  SnapshotStore store(&manager);
  ASSERT_OK(store.Attach());
  ScopedReader reader(&store);
  QueryService service(&store);

  ASSERT_OK_AND_ASSIGN(Table top1,
                       service.TopK("v", "Price", 1, reader.get()));
  ASSERT_EQ(top1.num_rows(), 1u);
  size_t price = top1.schema().ColumnIndexOrDie("Price");
  EXPECT_EQ(top1.rows()[0][price], I(300));

  // k past the table size returns everything, still descending.
  ASSERT_OK_AND_ASSIGN(Table all,
                       service.TopK("v", "Price", 10, reader.get()));
  ASSERT_EQ(all.num_rows(), 2u);
  EXPECT_EQ(all.rows()[0][price], I(300));
  EXPECT_EQ(all.rows()[1][price], I(200));

  EXPECT_FALSE(service.TopK("v", "NoSuchColumn", 1, reader.get()).ok());
  EXPECT_TRUE(
      service.TopK("nope", "Price", 1, reader.get()).status().IsNotFound());
}

TEST(QueryServiceTest, QueriesAgainstPinnedSnapshotIgnoreLaterEpochs) {
  // A service wrapped around a pinned snapshot epoch: a query that starts
  // before an epoch and finishes after it must see only pre-epoch rows.
  // Single-threaded stand-in for the stress test's concurrent version.
  ViewManager manager = MakePivotManager();
  SnapshotStore store(&manager);
  ASSERT_OK(store.Attach());
  ScopedReader reader(&store);
  std::shared_ptr<const Snapshot> pinned = store.Acquire("v", reader.get());
  ASSERT_NE(pinned, nullptr);
  Table before = pinned->table();

  ASSERT_OK(manager.ApplyUpdate(ItemsInsert(manager, 2, "Type", "DVD")));

  EXPECT_TRUE(BagEqual(before, pinned->table()));
  QueryService service(&store);
  ASSERT_OK_AND_ASSIGN(
      Table now, service.Scan("v", Gt(Col("Price"), Lit(int64_t{0})),
                              reader.get()));
  ASSERT_OK_AND_ASSIGN(Table recomputed, manager.RecomputeFromScratch("v"));
  EXPECT_TRUE(BagEqual(recomputed, now));
}

}  // namespace
}  // namespace gpivot
