// Unit tests for the relational substrate: Value, Schema, Table, KeyIndex.
#include <gtest/gtest.h>

#include "algebra/plan.h"
#include "relation/key_index.h"
#include "relation/row.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "relation/value.h"
#include "test_util.h"

namespace gpivot {
namespace {

using testing::D;
using testing::I;
using testing::MakeTable;
using testing::N;
using testing::S;

TEST(ValueTest, NullBasics) {
  Value null;
  EXPECT_TRUE(null.is_null());
  EXPECT_EQ(null.type(), DataType::kNull);
  EXPECT_EQ(null.ToString(), "⊥");
  EXPECT_EQ(null, Value::Null());
}

TEST(ValueTest, IntAndDoubleCompareNumerically) {
  EXPECT_EQ(I(3), D(3.0));
  EXPECT_NE(I(3), D(3.5));
  EXPECT_TRUE(I(2) < D(2.5));
  EXPECT_TRUE(D(1.5) < I(2));
}

TEST(ValueTest, EqualIntDoubleHashEqually) {
  EXPECT_EQ(I(42).Hash(), D(42.0).Hash());
}

TEST(ValueTest, NullEqualsNullForGrouping) {
  // Grouping / key semantics: ⊥ matches ⊥ (IS NOT DISTINCT FROM).
  EXPECT_EQ(N(), N());
  EXPECT_NE(N(), I(0));
  EXPECT_NE(S(""), N());
}

TEST(ValueTest, TotalOrderRanks) {
  EXPECT_TRUE(N() < I(-100));
  EXPECT_TRUE(I(5) < S("a"));
  EXPECT_FALSE(N() < N());
  EXPECT_TRUE(S("a") < S("b"));
}

TEST(ValueTest, AccessorsAbortOnWrongKind) {
  EXPECT_DEATH(N().AsInt(), "AsInt");
  EXPECT_DEATH(I(1).AsString(), "AsString");
  EXPECT_DEATH(S("x").AsNumeric(), "AsNumeric");
}

TEST(ValueTest, AsNumericCoercesInt) {
  EXPECT_DOUBLE_EQ(I(7).AsNumeric(), 7.0);
  EXPECT_DOUBLE_EQ(D(7.5).AsNumeric(), 7.5);
}

TEST(SchemaTest, LookupAndNames) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(schema.num_columns(), 2u);
  EXPECT_EQ(schema.FindColumn("b"), 1u);
  EXPECT_FALSE(schema.FindColumn("c").has_value());
  EXPECT_FALSE(schema.ColumnIndex("c").ok());
  EXPECT_EQ(schema.ColumnNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(SchemaTest, DuplicateNamesAbort) {
  EXPECT_DEATH(
      Schema({{"a", DataType::kInt64}, {"a", DataType::kInt64}}),
      "duplicate column");
}

TEST(SchemaTest, ConcatRejectsCollision) {
  Schema left({{"a", DataType::kInt64}});
  Schema right({{"a", DataType::kString}});
  EXPECT_TRUE(left.Concat(right).status().IsInvalidArgument());
}

TEST(SchemaTest, ConcatAppends) {
  Schema left({{"a", DataType::kInt64}});
  Schema right({{"b", DataType::kString}});
  ASSERT_OK_AND_ASSIGN(Schema combined, left.Concat(right));
  EXPECT_EQ(combined.num_columns(), 2u);
  EXPECT_EQ(combined.column(1).name, "b");
}

TEST(SchemaTest, DropAndSelectAndRename) {
  Schema schema({{"a", DataType::kInt64},
                 {"b", DataType::kString},
                 {"c", DataType::kDouble}});
  ASSERT_OK_AND_ASSIGN(Schema dropped, schema.Drop({"b"}));
  EXPECT_EQ(dropped.ColumnNames(), (std::vector<std::string>{"a", "c"}));
  EXPECT_TRUE(schema.Drop({"zz"}).status().IsNotFound());
  Schema selected = schema.Select({2, 0});
  EXPECT_EQ(selected.ColumnNames(), (std::vector<std::string>{"c", "a"}));
  Schema renamed = schema.Rename(1, "bb");
  EXPECT_TRUE(renamed.HasColumn("bb"));
  EXPECT_FALSE(renamed.HasColumn("b"));
}

TEST(RowTest, ProjectAndHash) {
  Row row = {I(1), S("x"), D(2.5)};
  Row projected = ProjectRow(row, {2, 0});
  EXPECT_EQ(projected, (Row{D(2.5), I(1)}));
  EXPECT_EQ(HashRowAt(row, {0, 1}), HashRow(Row{I(1), S("x")}));
  EXPECT_TRUE(RowsEqualAt(row, {0}, Row{I(1)}, {0}));
  EXPECT_FALSE(RowsEqualAt(row, {1}, Row{S("y")}, {0}));
}

TEST(TableTest, AddRowChecksArity) {
  Table t{Schema({{"a", DataType::kInt64}})};
  t.AddRow({I(1)});
  EXPECT_DEATH(t.AddRow({I(1), I(2)}), "arity");
}

TEST(TableTest, KeyValidation) {
  Table t = MakeTable({{"k", DataType::kInt64}, {"v", DataType::kInt64}},
                      {{I(1), I(10)}, {I(2), I(20)}, {I(1), I(30)}});
  ASSERT_OK(t.SetKey({"k"}));
  EXPECT_TRUE(t.ValidateKey().IsConstraintViolation());
  EXPECT_TRUE(t.SetKey({"nope"}).IsNotFound());
}

TEST(TableTest, BagEqualsIgnoresOrderRespectsMultiplicity) {
  Table a = MakeTable({{"x", DataType::kInt64}}, {{I(1)}, {I(2)}, {I(1)}});
  Table b = MakeTable({{"x", DataType::kInt64}}, {{I(2)}, {I(1)}, {I(1)}});
  Table c = MakeTable({{"x", DataType::kInt64}}, {{I(1)}, {I(2)}, {I(2)}});
  EXPECT_TRUE(a.BagEquals(b));
  EXPECT_FALSE(a.BagEquals(c));
}

TEST(TableTest, BagEqualsRequiresSameSchema) {
  Table a = MakeTable({{"x", DataType::kInt64}}, {{I(1)}});
  Table b = MakeTable({{"y", DataType::kInt64}}, {{I(1)}});
  EXPECT_FALSE(a.BagEquals(b));
}

TEST(TableTest, SortedIsDeterministic) {
  Table t = MakeTable({{"x", DataType::kInt64}, {"y", DataType::kString}},
                      {{I(2), S("b")}, {I(1), S("z")}, {I(2), S("a")}});
  Table sorted = t.Sorted();
  EXPECT_EQ(sorted.rows()[0], (Row{I(1), S("z")}));
  EXPECT_EQ(sorted.rows()[1], (Row{I(2), S("a")}));
}

TEST(KeyIndexTest, LookupInsertEraseReposition) {
  Table t = MakeTable({{"k", DataType::kInt64}, {"v", DataType::kInt64}},
                      {{I(1), I(10)}, {I(2), I(20)}});
  ASSERT_OK_AND_ASSIGN(KeyIndex index, KeyIndex::Build(t, {0}));
  EXPECT_EQ(index.LookupKey({I(1)}), 0u);
  EXPECT_EQ(index.LookupKey({I(2)}), 1u);
  EXPECT_FALSE(index.LookupKey({I(3)}).has_value());

  index.Insert({I(3), I(30)}, 2);
  EXPECT_EQ(index.LookupKey({I(3)}), 2u);
  index.EraseKey({I(1)});
  EXPECT_FALSE(index.LookupKey({I(1)}).has_value());
  index.Reposition({I(3), I(30)}, 0);
  EXPECT_EQ(index.LookupKey({I(3)}), 0u);
}

TEST(KeyIndexTest, DuplicateKeysRejected) {
  Table t = MakeTable({{"k", DataType::kInt64}}, {{I(1)}, {I(1)}});
  Result<KeyIndex> index = KeyIndex::Build(t, {0});
  EXPECT_TRUE(index.status().IsConstraintViolation());
  EXPECT_NE(index.status().message().find("duplicate key"), std::string::npos);
}

TEST(CatalogTest, CopyOnWriteIsolation) {
  Catalog original;
  ASSERT_OK(original.AddTable(
      "t", MakeTable({{"x", DataType::kInt64}}, {{I(1)}})));
  Catalog snapshot = original;
  original.GetMutableTable("t")->AddRow({I(2)});
  ASSERT_OK_AND_ASSIGN(const Table* changed, original.GetTable("t"));
  ASSERT_OK_AND_ASSIGN(const Table* unchanged, snapshot.GetTable("t"));
  EXPECT_EQ(changed->num_rows(), 2u);
  EXPECT_EQ(unchanged->num_rows(), 1u);
}

TEST(CatalogTest, MissingTableErrors) {
  Catalog catalog;
  EXPECT_TRUE(catalog.GetTable("nope").status().IsNotFound());
  EXPECT_TRUE(catalog.GetSharedTable("nope").status().IsNotFound());
  ASSERT_OK(catalog.AddTable("t", Table(Schema{})));
  EXPECT_TRUE(catalog.AddTable("t", Table(Schema{})).IsInvalidArgument());
}

}  // namespace
}  // namespace gpivot
