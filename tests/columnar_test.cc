// Columnar storage and vectorized execution: the typed column views must
// reproduce row-layer hashing/equality bit-for-bit, the Table column cache
// must invalidate on every mutation edge, and each operator fast path must
// return byte-identical tables to the row shim at any chunk size. These
// tests are the unit-level contract; columnar_property_test drives the same
// equivalence end-to-end through the view pipeline.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/gpivot.h"
#include "exec/basic_ops.h"
#include "exec/group_by.h"
#include "exec/join.h"
#include "exec/vector_ops.h"
#include "relation/columnar.h"
#include "storage/serialize.h"
#include "test_util.h"
#include "util/random.h"
#include "util/small_vector.h"

namespace gpivot {
namespace {

using testing::D;
using testing::I;
using testing::N;
using testing::S;

// ---- SmallVector ----------------------------------------------------------

TEST(SmallVectorTest, GrowsFromInlineToHeap) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 100; ++i) v.push_back(i * 3);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i * 3);
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 297);
}

TEST(SmallVectorTest, ResizeZeroFillsNewElements) {
  SmallVector<uint64_t, 2> v;
  v.push_back(7);
  v.resize(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v[0], 7u);
  for (size_t i = 1; i < 10; ++i) EXPECT_EQ(v[i], 0u);
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
}

TEST(SmallVectorTest, CopyAndMovePreserveContents) {
  SmallVector<int, 2> small;
  small.push_back(1);
  SmallVector<int, 2> big;
  for (int i = 0; i < 20; ++i) big.push_back(i);

  SmallVector<int, 2> small_copy = small;
  SmallVector<int, 2> big_copy = big;
  EXPECT_TRUE(small_copy == small);
  EXPECT_TRUE(big_copy == big);

  SmallVector<int, 2> moved = std::move(big_copy);
  EXPECT_TRUE(moved == big);
  EXPECT_TRUE(big_copy.empty());  // NOLINT(bugprone-use-after-move)

  small_copy = big;  // inline -> heap assignment
  EXPECT_TRUE(small_copy == big);
  big = small;  // heap -> inline-sized assignment
  EXPECT_EQ(big.size(), 1u);
  EXPECT_EQ(big[0], 1);
}

// ---- ColumnVector ---------------------------------------------------------

Table OneColumn(std::vector<Value> cells) {
  Table t{Schema({{"c", DataType::kInt64}})};
  for (Value& v : cells) t.AddRow({std::move(v)});
  return t;
}

TEST(ColumnVectorTest, DetectsStorageKindFromData) {
  auto kind_of = [](std::vector<Value> cells) {
    Table t = OneColumn(std::move(cells));
    return ColumnVector::Build(t.rows(), 0)->kind();
  };
  EXPECT_EQ(kind_of({I(1), I(2)}), ColumnKind::kInt64);
  EXPECT_EQ(kind_of({D(1.5), N(), D(2.5)}), ColumnKind::kDouble);
  EXPECT_EQ(kind_of({S("a"), S("b")}), ColumnKind::kString);
  EXPECT_EQ(kind_of({N(), N()}), ColumnKind::kAllNull);
  EXPECT_EQ(kind_of({}), ColumnKind::kAllNull);
  EXPECT_EQ(kind_of({I(1), D(2.0)}), ColumnKind::kMixed);
  EXPECT_EQ(kind_of({I(1), S("x")}), ColumnKind::kMixed);
}

std::vector<Value> MixedBagOfCells() {
  return {I(42),  N(),    D(3.25),  S(""),        S("hello"), I(-7),
          D(0.0), D(-0.0), I(0),    S("hello"),   N(),        D(3.25)};
}

TEST(ColumnVectorTest, AtReconstructsSourceCellsExactly) {
  // Every kind, including kMixed and null-bearing typed columns.
  std::vector<std::vector<Value>> columns = {
      {I(1), N(), I(3)},
      {D(1.5), D(-0.0), N()},
      {S("a"), S(""), N(), S("long string with spaces")},
      {N(), N()},
      MixedBagOfCells()};
  for (const std::vector<Value>& cells : columns) {
    Table t = OneColumn(cells);
    auto col = ColumnVector::Build(t.rows(), 0);
    ASSERT_EQ(col->size(), cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      EXPECT_EQ(col->IsNull(i), cells[i].is_null()) << "row " << i;
      Value back = col->At(i);
      EXPECT_EQ(back, cells[i]) << "row " << i;
      // Same storage type, not just Value-equal (Int(3) == Real(3.0)).
      EXPECT_EQ(back.is_int(), cells[i].is_int()) << "row " << i;
      EXPECT_EQ(back.is_double(), cells[i].is_double()) << "row " << i;
      EXPECT_EQ(back.is_string(), cells[i].is_string()) << "row " << i;
    }
  }
}

TEST(ColumnVectorTest, CellHashMatchesValueHash) {
  std::vector<Value> cells = MixedBagOfCells();
  // Once as kMixed (all together), once per homogeneous slice.
  Table mixed = OneColumn(cells);
  auto mixed_col = ColumnVector::Build(mixed.rows(), 0);
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(mixed_col->CellHash(i), cells[i].Hash()) << "mixed row " << i;
  }
  for (std::vector<Value> slice :
       {std::vector<Value>{I(42), N(), I(-7), I(0)},
        std::vector<Value>{D(3.25), D(0.0), D(-0.0), N()},
        std::vector<Value>{S(""), S("hello"), N()}}) {
    Table t = OneColumn(slice);
    auto col = ColumnVector::Build(t.rows(), 0);
    for (size_t i = 0; i < slice.size(); ++i) {
      EXPECT_EQ(col->CellHash(i), slice[i].Hash()) << "row " << i;
    }
  }
}

TEST(ColumnVectorTest, CellEqualityMatchesValueEquality) {
  std::vector<Value> cells = MixedBagOfCells();
  // Int(3)/Real(3.0) cross-type equality must survive typed storage.
  cells.push_back(I(3));
  cells.push_back(D(3.0));
  Table t = OneColumn(cells);
  auto as_mixed = ColumnVector::Build(t.rows(), 0);
  // A second, typed view of only the ints to exercise typed-vs-typed and
  // typed-vs-mixed comparisons.
  std::vector<Value> ints = {I(42), I(-7), I(0), I(3), N()};
  Table t_int = OneColumn(ints);
  auto int_col = ColumnVector::Build(t_int.rows(), 0);
  ASSERT_EQ(int_col->kind(), ColumnKind::kInt64);

  for (size_t i = 0; i < cells.size(); ++i) {
    for (size_t j = 0; j < cells.size(); ++j) {
      EXPECT_EQ(ColumnVector::CellsEqual(*as_mixed, i, *as_mixed, j),
                cells[i] == cells[j])
          << i << " vs " << j;
    }
    for (size_t j = 0; j < ints.size(); ++j) {
      EXPECT_EQ(ColumnVector::CellsEqual(*as_mixed, i, *int_col, j),
                cells[i] == ints[j])
          << i << " vs int " << j;
    }
    for (size_t j = 0; j < ints.size(); ++j) {
      EXPECT_EQ(as_mixed->CellEqualsValue(i, ints[j]), cells[i] == ints[j]);
      EXPECT_EQ(int_col->CellEqualsValue(j, cells[i]), ints[j] == cells[i]);
    }
  }
}

// ---- Table column cache ---------------------------------------------------

Table SmallTyped() {
  return testing::MakeTable({{"k", DataType::kInt64},
                             {"s", DataType::kString},
                             {"x", DataType::kDouble}},
                            {{I(1), S("a"), D(1.5)},
                             {I(2), S("b"), N()},
                             {I(3), N(), D(3.5)}});
}

TEST(TableColumnCacheTest, LazyBuildThenCached) {
  Table t = SmallTyped();
  EXPECT_EQ(t.CachedColumnData(0), nullptr) << "cache must start cold";
  auto first = t.ColumnData(0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->kind(), ColumnKind::kInt64);
  EXPECT_EQ(t.ColumnData(0).get(), first.get()) << "second read rebuilt";
  EXPECT_EQ(t.CachedColumnData(0).get(), first.get());
  EXPECT_EQ(t.CachedColumnData(1), nullptr) << "per-column laziness";
}

TEST(TableColumnCacheTest, MutationsInvalidate) {
  Table t = SmallTyped();
  (void)t.ColumnData(0);
  t.AddRow({I(4), S("d"), D(4.5)});
  EXPECT_EQ(t.CachedColumnData(0), nullptr) << "AddRow kept a stale cache";
  auto rebuilt = t.ColumnData(0);
  ASSERT_EQ(rebuilt->size(), 4u);
  EXPECT_EQ(rebuilt->Int64At(3), 4);

  (void)t.ColumnData(0);
  t.mutable_rows()[0][0] = I(99);
  EXPECT_EQ(t.CachedColumnData(0), nullptr)
      << "mutable_rows() kept a stale cache";
  EXPECT_EQ(t.ColumnData(0)->Int64At(0), 99);
}

TEST(TableColumnCacheTest, CopySharesWarmCacheAndSortedStartsCold) {
  Table t = SmallTyped();
  auto warm = t.ColumnData(2);
  Table copy = t;
  EXPECT_EQ(copy.CachedColumnData(2).get(), warm.get())
      << "copying an immutable view should keep its columns warm";
  // The copy's cache is independent: mutating the copy must not chill the
  // original.
  copy.AddRow({I(4), S("d"), D(4.5)});
  EXPECT_EQ(copy.CachedColumnData(2), nullptr);
  EXPECT_EQ(t.CachedColumnData(2).get(), warm.get());

  Table sorted = t.Sorted();
  EXPECT_EQ(sorted.CachedColumnData(2), nullptr)
      << "Sorted() reorders rows; its cache must not be the source's";
  EXPECT_EQ(t.CachedColumnData(2).get(), warm.get());
}

// ---- chunk-size knob ------------------------------------------------------

TEST(VectorChunkSizeTest, StrictParse) {
  EXPECT_EQ(exec::ParseVectorChunkSize("1024"), 1024u);
  EXPECT_EQ(exec::ParseVectorChunkSize("0"), 0u);
  EXPECT_EQ(exec::ParseVectorChunkSize("1"), 1u);
  EXPECT_FALSE(exec::ParseVectorChunkSize(nullptr).has_value());
  EXPECT_FALSE(exec::ParseVectorChunkSize("").has_value());
  EXPECT_FALSE(exec::ParseVectorChunkSize("-1").has_value());
  EXPECT_FALSE(exec::ParseVectorChunkSize("12x").has_value());
  EXPECT_FALSE(exec::ParseVectorChunkSize("x12").has_value());
  EXPECT_FALSE(exec::ParseVectorChunkSize(" 12").has_value());
  EXPECT_FALSE(exec::ParseVectorChunkSize("1.5").has_value());
}

TEST(VectorChunkSizeTest, ContextOverridesEnvDefault) {
  ExecContext ctx;
  EXPECT_EQ(ctx.vector_chunk_size, kVectorChunkAuto);
  ctx.vector_chunk_size = 0;
  EXPECT_EQ(exec::EffectiveVectorChunkSize(ctx), 0u);
  ctx.vector_chunk_size = 7;
  EXPECT_EQ(exec::EffectiveVectorChunkSize(ctx), 7u);
}

// ---- KeyColumns -----------------------------------------------------------

Table RandomMixedTable(Rng* rng, size_t rows, double null_fraction) {
  Table t{Schema({{"k", DataType::kInt64},
                  {"g", DataType::kString},
                  {"x", DataType::kDouble},
                  {"v", DataType::kInt64}})};
  for (size_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(rng->Chance(null_fraction) ? N() : I(rng->Int(1, 8)));
    row.push_back(rng->Chance(null_fraction)
                      ? N()
                      : S(std::string(1, 'a' + rng->Int(0, 3)).c_str()));
    row.push_back(rng->Chance(null_fraction) ? N()
                                             : D(rng->Int(0, 99) / 4.0));
    row.push_back(rng->Chance(null_fraction) ? N() : I(rng->Int(0, 99)));
    t.AddRow(std::move(row));
  }
  return t;
}

TEST(KeyColumnsTest, MatchesRowLayerHashingAndEquality) {
  Rng rng(1234);
  Table t = RandomMixedTable(&rng, 64, 0.15);
  std::vector<size_t> idx = {0, 1, 2};
  auto keys = exec::KeyColumns::Make(t, idx);
  ASSERT_TRUE(keys.has_value());
  ASSERT_EQ(keys->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(keys->Hash(r), HashRowAt(t.RowAt(r), idx)) << "row " << r;
    Row projected = ProjectRow(t.RowAt(r), idx);
    bool has_null = false;
    for (const Value& v : projected) has_null = has_null || v.is_null();
    EXPECT_EQ(keys->HasNull(r), has_null) << "row " << r;
    EXPECT_TRUE(keys->RowEqualsValues(r, projected));
    for (size_t s = 0; s < t.num_rows(); ++s) {
      EXPECT_EQ(keys->RowsEqual(r, *keys, s),
                RowsEqualAt(t.RowAt(r), idx, t.RowAt(s), idx))
          << r << " vs " << s;
    }
  }
}

TEST(KeyColumnsTest, BatchKernelsMatchScalarKernels) {
  Rng rng(99);
  Table t = RandomMixedTable(&rng, 100, 0.2);
  std::vector<size_t> idx = {0, 1};
  auto keys = exec::KeyColumns::Make(t, idx);
  ASSERT_TRUE(keys.has_value());
  for (auto [begin, end] : std::vector<std::pair<size_t, size_t>>{
           {0, 100}, {0, 1}, {37, 64}, {99, 100}, {50, 50}}) {
    std::vector<size_t> hashes(end - begin);
    std::vector<uint8_t> nulls(end - begin);
    keys->BatchHash(begin, end, hashes.data());
    keys->BatchHasNull(begin, end, nulls.data());
    for (size_t r = begin; r < end; ++r) {
      EXPECT_EQ(hashes[r - begin], keys->Hash(r)) << "row " << r;
      EXPECT_EQ(nulls[r - begin] != 0, keys->HasNull(r)) << "row " << r;
    }
  }
}

TEST(KeyColumnsTest, RejectsMixedTypeColumns) {
  Table t{Schema({{"m", DataType::kInt64}})};
  t.AddRow({I(1)});
  t.AddRow({S("oops")});
  EXPECT_FALSE(exec::KeyColumns::Make(t, {0}).has_value());
}

// ---- VectorPredicate ------------------------------------------------------

void ExpectPredicateMatchesRowShim(const Table& t, const ExprPtr& pred,
                                   bool expect_compiled) {
  auto vectorized = exec::VectorPredicate::Compile(pred, t);
  ASSERT_EQ(vectorized.has_value(), expect_compiled) << pred->ToString();
  if (!vectorized.has_value()) return;
  auto compiled = CompileExpr(pred, t.schema());
  ASSERT_TRUE(compiled.ok());
  std::vector<uint8_t> mask(t.num_rows());
  vectorized->EvalChunk(0, t.num_rows(), mask.data());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(mask[r] != 0, ValueIsTrue((*compiled)(t.RowAt(r))))
        << pred->ToString() << " row " << r << ": " << RowToString(t.RowAt(r));
  }
}

TEST(VectorPredicateTest, SupportedShapesMatchThreeValuedLogic) {
  Rng rng(777);
  Table t = RandomMixedTable(&rng, 80, 0.25);
  std::vector<ExprPtr> supported = {
      Eq(Col("k"), Lit(int64_t{3})),
      Ne(Col("k"), Lit(int64_t{3})),
      Lt(Col("v"), Lit(int64_t{50})),
      Le(Col("v"), Lit(int64_t{50})),
      Gt(Col("x"), Lit(10.0)),
      Ge(Col("x"), Lit(10.0)),
      Eq(Col("v"), Lit(50.0)),          // int column vs double literal
      Lt(Lit(int64_t{4}), Col("k")),    // literal-first mirroring
      Eq(Col("g"), Lit("b")),
      Ne(Col("g"), Lit("b")),
      Lt(Col("g"), Lit("c")),
      IsNull(Col("x")),
      And(Gt(Col("v"), Lit(int64_t{20})), Lt(Col("v"), Lit(int64_t{70}))),
      Or(IsNull(Col("k")), Ge(Col("k"), Lit(int64_t{6}))),
      Eq(Col("k"), Lit(Value::Null())),  // NULL literal: never TRUE
  };
  for (const ExprPtr& pred : supported) {
    ExpectPredicateMatchesRowShim(t, pred, /*expect_compiled=*/true);
  }
}

TEST(VectorPredicateTest, UnsupportedShapesFallBackToRowShim) {
  Rng rng(778);
  Table t = RandomMixedTable(&rng, 10, 0.1);
  std::vector<ExprPtr> unsupported = {
      Not(Eq(Col("k"), Lit(int64_t{3}))),   // NOT breaks is-TRUE masks
      Eq(Col("k"), Col("v")),               // column-to-column
      Eq(Col("g"), Lit(int64_t{1})),        // string col vs numeric literal
      Eq(Col("k"), Lit("one")),             // numeric col vs string literal
      And(Gt(Col("v"), Lit(int64_t{1})),
          Not(IsNull(Col("k")))),           // one unsupported child poisons
  };
  for (const ExprPtr& pred : unsupported) {
    ExpectPredicateMatchesRowShim(t, pred, /*expect_compiled=*/false);
  }
  Table mixed{Schema({{"m", DataType::kInt64}})};
  mixed.AddRow({I(1)});
  mixed.AddRow({S("oops")});
  ExpectPredicateMatchesRowShim(mixed, Eq(Col("m"), Lit(int64_t{1})),
                                /*expect_compiled=*/false);
}

// ---- operator fast paths vs row shim --------------------------------------

// Strict equality including row order and declared key — the fast paths
// promise byte-identical tables, not just equal bags.
void ExpectIdenticalTables(const Table& expected, const Table& actual,
                           const char* what) {
  ASSERT_EQ(expected.schema(), actual.schema()) << what;
  ASSERT_EQ(expected.key(), actual.key()) << what;
  ASSERT_EQ(expected.rows(), actual.rows()) << what;
}

ExecContext ChunkContext(size_t chunk) {
  ExecContext ctx;
  ctx.vector_chunk_size = chunk;
  return ctx;
}

const size_t kChunkSweep[] = {1, 3, 1024};

TEST(RowVsVectorTest, SelectAndProject) {
  Rng rng(4242);
  Table t = RandomMixedTable(&rng, 120, 0.2);
  ExprPtr pred = And(Gt(Col("v"), Lit(int64_t{25})),
                     Or(IsNull(Col("g")), Lt(Col("k"), Lit(int64_t{6}))));
  ASSERT_OK_AND_ASSIGN(Table sel_row,
                       exec::Select(t, pred, ChunkContext(0)));
  ASSERT_OK_AND_ASSIGN(
      Table proj_row,
      exec::Project(t, {"x", "k"}, ChunkContext(0)));
  for (size_t chunk : kChunkSweep) {
    ASSERT_OK_AND_ASSIGN(Table sel_vec,
                         exec::Select(t, pred, ChunkContext(chunk)));
    ExpectIdenticalTables(sel_row, sel_vec, "Select");
    ASSERT_OK_AND_ASSIGN(Table proj_vec,
                         exec::Project(t, {"x", "k"}, ChunkContext(chunk)));
    ExpectIdenticalTables(proj_row, proj_vec, "Project");
  }
}

TEST(RowVsVectorTest, InnerHashJoinBothBuildSides) {
  Rng rng(555);
  Table small = RandomMixedTable(&rng, 30, 0.15);
  Table large = RandomMixedTable(&rng, 90, 0.15);
  ASSERT_OK_AND_ASSIGN(
      Table right, exec::RenameColumns(large, {{"g", "g2"}, {"x", "x2"},
                                               {"v", "v2"}}));
  exec::JoinSpec spec;
  spec.left_keys = {"k"};
  spec.right_keys = {"k"};
  spec.type = exec::JoinType::kInner;
  // Both orientations: build-left (small probe-large) and build-right.
  for (const auto& [l, r] : std::vector<std::pair<Table, Table>>{
           {small, right}, {large, right}}) {
    for (const ExprPtr& residual :
         {ExprPtr(nullptr), Gt(Col("v2"), Lit(int64_t{30}))}) {
      spec.residual = residual;
      ASSERT_OK_AND_ASSIGN(Table row_path,
                           exec::HashJoin(l, r, spec, ChunkContext(0)));
      for (size_t chunk : kChunkSweep) {
        ASSERT_OK_AND_ASSIGN(Table vec_path,
                             exec::HashJoin(l, r, spec, ChunkContext(chunk)));
        ExpectIdenticalTables(row_path, vec_path, "HashJoin");
      }
    }
  }
}

TEST(RowVsVectorTest, GroupByAccumulation) {
  Rng rng(808);
  Table t = RandomMixedTable(&rng, 150, 0.2);
  std::vector<AggSpec> aggs = {
      AggSpec{AggFunc::kSum, "x", "sum_x"},
      AggSpec{AggFunc::kCount, "v", "cnt_v"},
      AggSpec{AggFunc::kCountStar, "", "cnt"},
      AggSpec{AggFunc::kMin, "v", "min_v"},
      AggSpec{AggFunc::kAvg, "x", "avg_x"},
  };
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ExecContext row_ctx = ChunkContext(0);
    row_ctx.num_threads = threads;
    row_ctx.min_parallel_rows = 1;
    ASSERT_OK_AND_ASSIGN(Table row_path,
                         exec::GroupBy(t, {"k", "g"}, aggs, row_ctx));
    for (size_t chunk : kChunkSweep) {
      ExecContext vec_ctx = ChunkContext(chunk);
      vec_ctx.num_threads = threads;
      vec_ctx.min_parallel_rows = 1;
      ASSERT_OK_AND_ASSIGN(Table vec_path,
                           exec::GroupBy(t, {"k", "g"}, aggs, vec_ctx));
      ExpectIdenticalTables(row_path, vec_path, "GroupBy");
    }
  }
}

TEST(RowVsVectorTest, GPivotCellRouting) {
  Rng rng(31337);
  testing::RandomVerticalSpec vspec;
  vspec.num_rows = 90;
  vspec.num_dims = 2;
  vspec.dim_alphabet = 3;
  vspec.num_measures = 2;
  Table t = testing::RandomVerticalTable(vspec, &rng);
  PivotSpec spec;
  spec.pivot_by = {"a1", "a2"};
  spec.pivot_on = {"b1", "b2"};
  for (int c0 = 0; c0 < 3; ++c0) {
    for (int c1 = 0; c1 < 3; ++c1) {
      spec.combos.push_back({S(("v" + std::to_string(c0)).c_str()),
                             S(("v" + std::to_string(c1)).c_str())});
    }
  }
  for (bool keep : {false, true}) {
    spec.keep_all_null_rows = keep;
    ASSERT_OK_AND_ASSIGN(Table row_path, GPivot(t, spec, ChunkContext(0)));
    for (size_t chunk : kChunkSweep) {
      ASSERT_OK_AND_ASSIGN(Table vec_path,
                           GPivot(t, spec, ChunkContext(chunk)));
      ExpectIdenticalTables(row_path, vec_path, "GPivot");
    }
  }
}

TEST(RowVsVectorTest, GPivotDuplicateKeyErrorMessageIdentical) {
  Table t{Schema({{"k", DataType::kInt64},
                  {"a", DataType::kString},
                  {"b", DataType::kInt64}})};
  t.AddRow({I(1), S("x"), I(10)});
  t.AddRow({I(1), S("x"), I(20)});  // duplicate (k, a) pair
  PivotSpec spec;
  spec.pivot_by = {"a"};
  spec.pivot_on = {"b"};
  spec.combos = {{S("x")}};
  Result<Table> row_path = GPivot(t, spec, ChunkContext(0));
  ASSERT_FALSE(row_path.ok());
  for (size_t chunk : kChunkSweep) {
    Result<Table> vec_path = GPivot(t, spec, ChunkContext(chunk));
    ASSERT_FALSE(vec_path.ok());
    EXPECT_EQ(vec_path.status().ToString(), row_path.status().ToString());
  }
}

// ---- serialize fast path --------------------------------------------------

TEST(SerializeColumnarTest, WarmCacheBytesIdenticalToColdEncoding) {
  Rng rng(2025);
  Table t = RandomMixedTable(&rng, 40, 0.25);
  // Add a mixed-type column so the fast path's per-Value fallback runs too.
  Table mixed{Schema({{"k", DataType::kInt64},
                      {"g", DataType::kString},
                      {"x", DataType::kDouble},
                      {"v", DataType::kInt64},
                      {"m", DataType::kInt64}})};
  Rng cell_rng(7);
  for (const Row& row : t.rows()) {
    Row extended = row;
    int pick = static_cast<int>(cell_rng.Int(0, 3));
    extended.push_back(pick == 0   ? I(cell_rng.Int(0, 9))
                       : pick == 1 ? D(cell_rng.Int(0, 9) / 2.0)
                       : pick == 2 ? S("mix")
                                   : N());
    mixed.AddRow(std::move(extended));
  }

  std::string cold = storage::EncodeTableToString(mixed);
  for (size_t c = 0; c < mixed.schema().num_columns(); ++c) {
    (void)mixed.ColumnData(c);  // warm every column
    ASSERT_NE(mixed.CachedColumnData(c), nullptr);
  }
  std::string warm = storage::EncodeTableToString(mixed);
  EXPECT_EQ(cold, warm) << "columnar encoding changed the wire bytes";

  // And the bytes still round-trip.
  storage::BinaryReader reader(warm);
  ASSERT_OK_AND_ASSIGN(Table decoded, storage::DecodeTable(&reader));
  EXPECT_EQ(decoded.rows(), mixed.rows());
}

}  // namespace
}  // namespace gpivot
