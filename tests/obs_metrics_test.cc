// MetricsRegistry contract tests: exact sums under concurrency (the
// thread-local shards must never lose an update), deterministic snapshots,
// a true no-op disabled path, and valid JSON rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace gpivot {
namespace {

using obs::HistogramData;
using obs::IsValidJson;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::ScopedLatency;

TEST(MetricsRegistryTest, CountersSumExactly) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.AddCounter("a");
  registry.AddCounter("a", 4);
  registry.AddCounter("b", 10);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("a"), 5u);
  EXPECT_EQ(snapshot.counters.at("b"), 10u);
}

TEST(MetricsRegistryTest, ConcurrentCountersSumExactly) {
  // Run under TSan in CI: increments from every pool worker plus the
  // caller must merge to the exact total, with no race reports.
  MetricsRegistry registry;
  registry.set_enabled(true);
  const size_t n = 10000;
  ParallelFor(ExecContext{7, 1}, n, [&](size_t i) {
    registry.AddCounter("hits");
    registry.AddCounter("sum", i);
  });
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("hits"), n);
  EXPECT_EQ(snapshot.counters.at("sum"), n * (n - 1) / 2);
}

TEST(MetricsRegistryTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry;
  ASSERT_FALSE(registry.enabled());
  registry.AddCounter("a");
  registry.RecordLatency("h", 1.0);
  { ScopedLatency latency(&registry, "h"); }
  { ScopedLatency latency(nullptr, "h"); }
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
}

TEST(MetricsRegistryTest, ResetClearsEveryShard) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  ParallelFor(ExecContext{4, 1}, 100, [&](size_t) {
    registry.AddCounter("a");
  });
  EXPECT_EQ(registry.Snapshot().counters.at("a"), 100u);
  registry.Reset();
  EXPECT_TRUE(registry.Snapshot().counters.empty());
  registry.AddCounter("a");
  EXPECT_EQ(registry.Snapshot().counters.at("a"), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSorted) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.AddCounter("zebra");
  registry.AddCounter("alpha");
  registry.AddCounter("middle");
  MetricsSnapshot snapshot = registry.Snapshot();
  std::vector<std::string> names;
  for (const auto& [name, value] : snapshot.counters) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "middle", "zebra"}));
}

TEST(MetricsRegistryTest, HistogramStats) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.RecordLatency("h", 1.5);
  registry.RecordLatency("h", 0.5);
  registry.RecordLatency("h", 8.0);
  MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramData& h = snapshot.histograms.at("h");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.total_ms, 10.0);
  EXPECT_DOUBLE_EQ(h.min_ms, 0.5);
  EXPECT_DOUBLE_EQ(h.max_ms, 8.0);
  EXPECT_NEAR(h.mean_ms(), 10.0 / 3.0, 1e-9);
  uint64_t bucketed = 0;
  for (uint64_t b : h.buckets) bucketed += b;
  EXPECT_EQ(bucketed, 3u);
}

TEST(MetricsRegistryTest, HistogramBucketIndexClampsAndOrders) {
  EXPECT_EQ(HistogramData::BucketIndex(0.0), 0u);
  EXPECT_EQ(HistogramData::BucketIndex(-1.0), 0u);
  EXPECT_EQ(HistogramData::BucketIndex(1.0),
            static_cast<size_t>(HistogramData::kBucketBias));
  EXPECT_LT(HistogramData::BucketIndex(1.0), HistogramData::BucketIndex(100.0));
  EXPECT_EQ(HistogramData::BucketIndex(1e12),
            HistogramData::kNumBuckets - 1);
}

TEST(MetricsRegistryTest, ScopedLatencyRecordsOneSample) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  { ScopedLatency latency(&registry, "scoped.ms"); }
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.histograms.at("scoped.ms").count, 1u);
  EXPECT_GE(snapshot.histograms.at("scoped.ms").total_ms, 0.0);
}

TEST(MetricsSnapshotTest, ToJsonIsValidJson) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.AddCounter("exec.join.calls", 3);
  registry.AddCounter("weird\"name\\with\nescapes");
  registry.RecordLatency("exec.join.ms", 1.25);
  MetricsSnapshot snapshot = registry.Snapshot();
  std::string json = snapshot.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("exec.join.calls"), std::string::npos);
  std::string indented = snapshot.ToJson(4);
  EXPECT_TRUE(IsValidJson(indented)) << indented;
}

TEST(MetricsSnapshotTest, EmptySnapshotIsValidJson) {
  MetricsSnapshot snapshot;
  EXPECT_TRUE(IsValidJson(snapshot.ToJson()));
  EXPECT_TRUE(snapshot.ToString().empty());
}

TEST(JsonUtilTest, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("[1, 2.5, -3e2, \"s\", true, false, null]"));
  EXPECT_TRUE(IsValidJson("{\"a\": {\"b\": [\"\\u00ff\", \"\\n\"]}}"));
  EXPECT_FALSE(IsValidJson(""));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson("{\"a\": }"));
  EXPECT_FALSE(IsValidJson("[1,]"));
  EXPECT_FALSE(IsValidJson("{} trailing"));
  EXPECT_FALSE(IsValidJson("\"unterminated"));
  EXPECT_FALSE(IsValidJson("01"));
}

TEST(HistogramQuantileTest, EstimatesWithinBucketResolution) {
  obs::HistogramData h;
  EXPECT_EQ(h.QuantileMs(0.5), 0.0);  // empty
  // 100 samples spread uniformly over [1, 100] ms.
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  double p50 = h.QuantileMs(0.5);
  double p95 = h.QuantileMs(0.95);
  double p99 = h.QuantileMs(0.99);
  // Log2 buckets: estimates land within the true value's bucket (a factor
  // of 2), and quantiles are monotone and clamped to the observed range.
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max_ms);
  EXPECT_GE(h.QuantileMs(0.0), h.min_ms);

  // A single sample: every quantile is that sample.
  obs::HistogramData single;
  single.Record(7.0);
  EXPECT_EQ(single.QuantileMs(0.5), 7.0);
  EXPECT_EQ(single.QuantileMs(0.99), 7.0);
}

TEST(MetricsSnapshotTest, JsonAndTextCarryQuantiles) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  for (int i = 0; i < 32; ++i) registry.RecordLatency("stage_ms", 4.0 + i);
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  std::string json = snapshot.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"p50_ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos) << json;
  EXPECT_NE(snapshot.ToString().find("p95_ms="), std::string::npos);
}

TEST(MetricsSnapshotTest, PrometheusExposition) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  registry.AddCounter("exec.join.calls", 3);
  registry.AddCounter("ivm.merge.updates", 5);
  registry.RecordLatency("ivm.stage_ms", 12.0);
  std::string text = registry.Snapshot().ToPrometheusText();
  // Names are sanitized into the gpivot_ namespace, one TYPE line each.
  EXPECT_NE(text.find("# TYPE gpivot_exec_join_calls counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("gpivot_exec_join_calls 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gpivot_ivm_stage_ms summary"),
            std::string::npos);
  EXPECT_NE(text.find("gpivot_ivm_stage_ms{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gpivot_ivm_stage_ms_count 1"), std::string::npos);
  // Every line is either a comment or `name[{labels}] value`.
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(registry.Snapshot().counters.count("exec.join.calls"), 1u);
}

}  // namespace
}  // namespace gpivot
