// MetricsRegistry contract tests: exact sums under concurrency (the
// thread-local shards must never lose an update), deterministic snapshots,
// a true no-op disabled path, and valid JSON rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace gpivot {
namespace {

using obs::HistogramData;
using obs::IsValidJson;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::ScopedLatency;

TEST(MetricsRegistryTest, CountersSumExactly) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.AddCounter("a");
  registry.AddCounter("a", 4);
  registry.AddCounter("b", 10);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("a"), 5u);
  EXPECT_EQ(snapshot.counters.at("b"), 10u);
}

TEST(MetricsRegistryTest, ConcurrentCountersSumExactly) {
  // Run under TSan in CI: increments from every pool worker plus the
  // caller must merge to the exact total, with no race reports.
  MetricsRegistry registry;
  registry.set_enabled(true);
  const size_t n = 10000;
  ParallelFor(ExecContext{7, 1}, n, [&](size_t i) {
    registry.AddCounter("hits");
    registry.AddCounter("sum", i);
  });
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("hits"), n);
  EXPECT_EQ(snapshot.counters.at("sum"), n * (n - 1) / 2);
}

TEST(MetricsRegistryTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry;
  ASSERT_FALSE(registry.enabled());
  registry.AddCounter("a");
  registry.RecordLatency("h", 1.0);
  { ScopedLatency latency(&registry, "h"); }
  { ScopedLatency latency(nullptr, "h"); }
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
}

TEST(MetricsRegistryTest, ResetClearsEveryShard) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  ParallelFor(ExecContext{4, 1}, 100, [&](size_t) {
    registry.AddCounter("a");
  });
  EXPECT_EQ(registry.Snapshot().counters.at("a"), 100u);
  registry.Reset();
  EXPECT_TRUE(registry.Snapshot().counters.empty());
  registry.AddCounter("a");
  EXPECT_EQ(registry.Snapshot().counters.at("a"), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSorted) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.AddCounter("zebra");
  registry.AddCounter("alpha");
  registry.AddCounter("middle");
  MetricsSnapshot snapshot = registry.Snapshot();
  std::vector<std::string> names;
  for (const auto& [name, value] : snapshot.counters) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "middle", "zebra"}));
}

TEST(MetricsRegistryTest, HistogramStats) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.RecordLatency("h", 1.5);
  registry.RecordLatency("h", 0.5);
  registry.RecordLatency("h", 8.0);
  MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramData& h = snapshot.histograms.at("h");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.total_ms, 10.0);
  EXPECT_DOUBLE_EQ(h.min_ms, 0.5);
  EXPECT_DOUBLE_EQ(h.max_ms, 8.0);
  EXPECT_NEAR(h.mean_ms(), 10.0 / 3.0, 1e-9);
  uint64_t bucketed = 0;
  for (uint64_t b : h.buckets) bucketed += b;
  EXPECT_EQ(bucketed, 3u);
}

TEST(MetricsRegistryTest, HistogramBucketIndexClampsAndOrders) {
  EXPECT_EQ(HistogramData::BucketIndex(0.0), 0u);
  EXPECT_EQ(HistogramData::BucketIndex(-1.0), 0u);
  EXPECT_EQ(HistogramData::BucketIndex(1.0),
            static_cast<size_t>(HistogramData::kBucketBias));
  EXPECT_LT(HistogramData::BucketIndex(1.0), HistogramData::BucketIndex(100.0));
  EXPECT_EQ(HistogramData::BucketIndex(1e12),
            HistogramData::kNumBuckets - 1);
}

TEST(MetricsRegistryTest, ScopedLatencyRecordsOneSample) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  { ScopedLatency latency(&registry, "scoped.ms"); }
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.histograms.at("scoped.ms").count, 1u);
  EXPECT_GE(snapshot.histograms.at("scoped.ms").total_ms, 0.0);
}

TEST(MetricsSnapshotTest, ToJsonIsValidJson) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.AddCounter("exec.join.calls", 3);
  registry.AddCounter("weird\"name\\with\nescapes");
  registry.RecordLatency("exec.join.ms", 1.25);
  MetricsSnapshot snapshot = registry.Snapshot();
  std::string json = snapshot.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("exec.join.calls"), std::string::npos);
  std::string indented = snapshot.ToJson(4);
  EXPECT_TRUE(IsValidJson(indented)) << indented;
}

TEST(MetricsSnapshotTest, EmptySnapshotIsValidJson) {
  MetricsSnapshot snapshot;
  EXPECT_TRUE(IsValidJson(snapshot.ToJson()));
  EXPECT_TRUE(snapshot.ToString().empty());
}

TEST(JsonUtilTest, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("[1, 2.5, -3e2, \"s\", true, false, null]"));
  EXPECT_TRUE(IsValidJson("{\"a\": {\"b\": [\"\\u00ff\", \"\\n\"]}}"));
  EXPECT_FALSE(IsValidJson(""));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson("{\"a\": }"));
  EXPECT_FALSE(IsValidJson("[1,]"));
  EXPECT_FALSE(IsValidJson("{} trailing"));
  EXPECT_FALSE(IsValidJson("\"unterminated"));
  EXPECT_FALSE(IsValidJson("01"));
}

TEST(HistogramQuantileTest, EstimatesWithinBucketResolution) {
  obs::HistogramData h;
  EXPECT_EQ(h.QuantileMs(0.5), 0.0);  // empty
  // 100 samples spread uniformly over [1, 100] ms.
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  double p50 = h.QuantileMs(0.5);
  double p95 = h.QuantileMs(0.95);
  double p99 = h.QuantileMs(0.99);
  // Log2 buckets: estimates land within the true value's bucket (a factor
  // of 2), and quantiles are monotone and clamped to the observed range.
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max_ms);
  EXPECT_GE(h.QuantileMs(0.0), h.min_ms);

  // A single sample: every quantile is that sample.
  obs::HistogramData single;
  single.Record(7.0);
  EXPECT_EQ(single.QuantileMs(0.5), 7.0);
  EXPECT_EQ(single.QuantileMs(0.99), 7.0);
}

TEST(MetricsSnapshotTest, JsonAndTextCarryQuantiles) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  for (int i = 0; i < 32; ++i) registry.RecordLatency("stage_ms", 4.0 + i);
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  std::string json = snapshot.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"p50_ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos) << json;
  EXPECT_NE(snapshot.ToString().find("p95_ms="), std::string::npos);
}

TEST(MetricsSnapshotTest, PrometheusExposition) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  registry.AddCounter("exec.join.calls", 3);
  registry.AddCounter("ivm.merge.updates", 5);
  registry.RecordLatency("ivm.stage_ms", 12.0);
  std::string text = registry.Snapshot().ToPrometheusText();
  // Names are sanitized into the gpivot_ namespace, one TYPE line each.
  EXPECT_NE(text.find("# TYPE gpivot_exec_join_calls counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("gpivot_exec_join_calls 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gpivot_ivm_stage_ms summary"),
            std::string::npos);
  EXPECT_NE(text.find("gpivot_ivm_stage_ms{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gpivot_ivm_stage_ms_count 1"), std::string::npos);
  // Every line is either a comment or `name[{labels}] value`.
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(registry.Snapshot().counters.count("exec.join.calls"), 1u);
}

TEST(MetricsRegistryTest, GaugesSetAddAndLastWriteWins) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.SetGauge("queue.depth", 5.0);
  registry.SetGauge("queue.depth", 3.0);  // last write wins
  registry.AddGauge("water.level", 2.0);
  registry.AddGauge("water.level", -0.5);
  registry.SetGauge("view.seq", "view", "v1", 7.0);
  registry.SetGauge("view.seq", "view", "v2", 9.0);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.gauges.at("queue.depth").at({"", ""}), 3.0);
  EXPECT_EQ(snapshot.gauges.at("water.level").at({"", ""}), 1.5);
  EXPECT_EQ(snapshot.gauges.at("view.seq").at({"view", "v1"}), 7.0);
  EXPECT_EQ(snapshot.gauges.at("view.seq").at({"view", "v2"}), 9.0);

  registry.Reset();
  EXPECT_TRUE(registry.Snapshot().gauges.empty());
}

TEST(MetricsRegistryTest, DisabledRegistryIgnoresGauges) {
  MetricsRegistry registry;
  registry.SetGauge("g", 1.0);
  registry.AddGauge("g", 1.0);
  registry.SetGauge("g", "k", "v", 1.0);
  EXPECT_TRUE(registry.Snapshot().gauges.empty());
}

TEST(MetricsSnapshotTest, GaugePrometheusExpositionAndEscaping) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.SetGauge("serve.view.staleness", "view", "v\"1\\x\ny", 2.0);
  registry.SetGauge("ivm.batcher.pending_net_rows", 17.0);
  std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE gpivot_serve_view_staleness gauge"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE gpivot_ivm_batcher_pending_net_rows gauge"),
            std::string::npos);
  EXPECT_NE(text.find("gpivot_ivm_batcher_pending_net_rows 17"),
            std::string::npos);
  // The label value's backslash, quote, and newline are escaped per the
  // text format, keeping the sample on one line.
  EXPECT_NE(
      text.find(
          "gpivot_serve_view_staleness{view=\"v\\\"1\\\\x\\ny\"} 2"),
      std::string::npos)
      << text;
  // No raw newline sneaks between the label open-brace and the sample value.
  size_t label_pos = text.find("{view=");
  ASSERT_NE(label_pos, std::string::npos);
  EXPECT_GT(text.find('\n', label_pos), text.find("} 2", label_pos));
}

TEST(MetricsSnapshotTest, PrometheusEscapeCoversAllSpecials) {
  EXPECT_EQ(obs::PrometheusEscape("plain"), "plain");
  EXPECT_EQ(obs::PrometheusEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::PrometheusEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::PrometheusEscape("a\nb"), "a\\nb");
  EXPECT_EQ(obs::PrometheusEscape("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(obs::PrometheusEscape(""), "");
}

TEST(MetricsSnapshotTest, GaugesSectionOnlyRendersWhenPresent) {
  // The determinism boundary depends on this: a registry that never set a
  // gauge must render byte-identically to the pre-gauge format.
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.AddCounter("c", 1);
  std::string without = registry.Snapshot().ToJson();
  EXPECT_EQ(without.find("\"gauges\""), std::string::npos) << without;
  EXPECT_TRUE(IsValidJson(without));

  registry.SetGauge("depth", 4.0);
  registry.SetGauge("seq", "view", "v1", 2.0);
  std::string with = registry.Snapshot().ToJson();
  EXPECT_NE(with.find("\"gauges\""), std::string::npos) << with;
  EXPECT_NE(with.find("\"seq{view=v1}\""), std::string::npos) << with;
  EXPECT_TRUE(IsValidJson(with)) << with;
  EXPECT_NE(registry.Snapshot().ToString().find("depth 4"),
            std::string::npos);
}

TEST(MetricsSnapshotTest, MergeFromAddsCountersAndOverwritesGauges) {
  MetricsSnapshot a;
  a.counters["c"] = 3;
  a.gauges["g"][{"", ""}] = 1.0;
  a.histograms["h"].Record(2.0);
  MetricsSnapshot b;
  b.counters["c"] = 4;
  b.counters["d"] = 1;
  b.gauges["g"][{"", ""}] = 9.0;
  b.histograms["h"].Record(8.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.counters.at("c"), 7u);
  EXPECT_EQ(a.counters.at("d"), 1u);
  EXPECT_EQ(a.gauges.at("g").at({"", ""}), 9.0);  // last write wins
  EXPECT_EQ(a.histograms.at("h").count, 2u);
}

TEST(HistogramQuantileTest, EdgeCounts) {
  // count == 0: every quantile is 0.
  HistogramData empty;
  EXPECT_EQ(empty.QuantileMs(0.5), 0.0);
  EXPECT_EQ(empty.QuantileMs(0.99), 0.0);

  // count == 1: p50/p95/p99 all clamp to the single observation.
  HistogramData one;
  one.Record(3.0);
  EXPECT_EQ(one.QuantileMs(0.5), 3.0);
  EXPECT_EQ(one.QuantileMs(0.95), 3.0);
  EXPECT_EQ(one.QuantileMs(0.99), 3.0);

  // count == 2 in different buckets: p50 stays within [min, max] and p99
  // lands in the upper sample's bucket, clamped to max.
  HistogramData two;
  two.Record(1.0);
  two.Record(64.0);
  double p50 = two.QuantileMs(0.5);
  double p99 = two.QuantileMs(0.99);
  EXPECT_GE(p50, two.min_ms);
  EXPECT_LE(p50, two.max_ms);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, two.max_ms);

  // Samples exactly on a bucket boundary (a power of two): the estimate
  // must stay within the bucket that starts there, i.e. within a factor
  // of 2, and never exceed the clamp.
  HistogramData boundary;
  for (int i = 0; i < 10; ++i) boundary.Record(8.0);
  double q = boundary.QuantileMs(0.99);
  EXPECT_EQ(q, 8.0);  // clamped to [min, max] = [8, 8]
  EXPECT_EQ(HistogramData::BucketIndex(8.0),
            HistogramData::BucketIndex(8.0 + 1e-9));
  EXPECT_EQ(HistogramData::BucketIndex(8.0),
            HistogramData::BucketIndex(15.9));
  EXPECT_NE(HistogramData::BucketIndex(8.0),
            HistogramData::BucketIndex(16.0));

  // q outside [0, 1] clamps instead of misbehaving.
  EXPECT_EQ(one.QuantileMs(-0.5), 3.0);
  EXPECT_EQ(one.QuantileMs(1.5), 3.0);
}

}  // namespace
}  // namespace gpivot
