// MetricsRegistry contract tests: exact sums under concurrency (the
// thread-local shards must never lose an update), deterministic snapshots,
// a true no-op disabled path, and valid JSON rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace gpivot {
namespace {

using obs::HistogramData;
using obs::IsValidJson;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::ScopedLatency;

TEST(MetricsRegistryTest, CountersSumExactly) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.AddCounter("a");
  registry.AddCounter("a", 4);
  registry.AddCounter("b", 10);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("a"), 5u);
  EXPECT_EQ(snapshot.counters.at("b"), 10u);
}

TEST(MetricsRegistryTest, ConcurrentCountersSumExactly) {
  // Run under TSan in CI: increments from every pool worker plus the
  // caller must merge to the exact total, with no race reports.
  MetricsRegistry registry;
  registry.set_enabled(true);
  const size_t n = 10000;
  ParallelFor(ExecContext{7, 1}, n, [&](size_t i) {
    registry.AddCounter("hits");
    registry.AddCounter("sum", i);
  });
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("hits"), n);
  EXPECT_EQ(snapshot.counters.at("sum"), n * (n - 1) / 2);
}

TEST(MetricsRegistryTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry;
  ASSERT_FALSE(registry.enabled());
  registry.AddCounter("a");
  registry.RecordLatency("h", 1.0);
  { ScopedLatency latency(&registry, "h"); }
  { ScopedLatency latency(nullptr, "h"); }
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
}

TEST(MetricsRegistryTest, ResetClearsEveryShard) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  ParallelFor(ExecContext{4, 1}, 100, [&](size_t) {
    registry.AddCounter("a");
  });
  EXPECT_EQ(registry.Snapshot().counters.at("a"), 100u);
  registry.Reset();
  EXPECT_TRUE(registry.Snapshot().counters.empty());
  registry.AddCounter("a");
  EXPECT_EQ(registry.Snapshot().counters.at("a"), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSorted) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.AddCounter("zebra");
  registry.AddCounter("alpha");
  registry.AddCounter("middle");
  MetricsSnapshot snapshot = registry.Snapshot();
  std::vector<std::string> names;
  for (const auto& [name, value] : snapshot.counters) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "middle", "zebra"}));
}

TEST(MetricsRegistryTest, HistogramStats) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.RecordLatency("h", 1.5);
  registry.RecordLatency("h", 0.5);
  registry.RecordLatency("h", 8.0);
  MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramData& h = snapshot.histograms.at("h");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.total_ms, 10.0);
  EXPECT_DOUBLE_EQ(h.min_ms, 0.5);
  EXPECT_DOUBLE_EQ(h.max_ms, 8.0);
  EXPECT_NEAR(h.mean_ms(), 10.0 / 3.0, 1e-9);
  uint64_t bucketed = 0;
  for (uint64_t b : h.buckets) bucketed += b;
  EXPECT_EQ(bucketed, 3u);
}

TEST(MetricsRegistryTest, HistogramBucketIndexClampsAndOrders) {
  EXPECT_EQ(HistogramData::BucketIndex(0.0), 0u);
  EXPECT_EQ(HistogramData::BucketIndex(-1.0), 0u);
  EXPECT_EQ(HistogramData::BucketIndex(1.0),
            static_cast<size_t>(HistogramData::kBucketBias));
  EXPECT_LT(HistogramData::BucketIndex(1.0), HistogramData::BucketIndex(100.0));
  EXPECT_EQ(HistogramData::BucketIndex(1e12),
            HistogramData::kNumBuckets - 1);
}

TEST(MetricsRegistryTest, ScopedLatencyRecordsOneSample) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  { ScopedLatency latency(&registry, "scoped.ms"); }
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.histograms.at("scoped.ms").count, 1u);
  EXPECT_GE(snapshot.histograms.at("scoped.ms").total_ms, 0.0);
}

TEST(MetricsSnapshotTest, ToJsonIsValidJson) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.AddCounter("exec.join.calls", 3);
  registry.AddCounter("weird\"name\\with\nescapes");
  registry.RecordLatency("exec.join.ms", 1.25);
  MetricsSnapshot snapshot = registry.Snapshot();
  std::string json = snapshot.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("exec.join.calls"), std::string::npos);
  std::string indented = snapshot.ToJson(4);
  EXPECT_TRUE(IsValidJson(indented)) << indented;
}

TEST(MetricsSnapshotTest, EmptySnapshotIsValidJson) {
  MetricsSnapshot snapshot;
  EXPECT_TRUE(IsValidJson(snapshot.ToJson()));
  EXPECT_TRUE(snapshot.ToString().empty());
}

TEST(JsonUtilTest, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("[1, 2.5, -3e2, \"s\", true, false, null]"));
  EXPECT_TRUE(IsValidJson("{\"a\": {\"b\": [\"\\u00ff\", \"\\n\"]}}"));
  EXPECT_FALSE(IsValidJson(""));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson("{\"a\": }"));
  EXPECT_FALSE(IsValidJson("[1,]"));
  EXPECT_FALSE(IsValidJson("{} trailing"));
  EXPECT_FALSE(IsValidJson("\"unterminated"));
  EXPECT_FALSE(IsValidJson("01"));
}

}  // namespace
}  // namespace gpivot
