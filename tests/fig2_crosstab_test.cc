// End-to-end test of the paper's running example: the Fig. 2 ROLAP view
// (double pivot + join + aggregate) is rewritten into Fig. 11's pulled-up
// form, combined via Eq. 6 into the Fig. 28 single GPIVOT-over-GROUPBY, and
// maintained with the Fig. 27 combined rules.
#include <gtest/gtest.h>

#include "algebra/plan.h"
#include "ivm/view_manager.h"
#include "rewrite/rewriter.h"
#include "test_util.h"
#include "util/random.h"

namespace gpivot {
namespace {

using ivm::Delta;
using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;
using testing::BagEqual;
using testing::I;
using testing::S;

// Random Payment/Product database: Payment(AuctionID, Payment, Price) keyed
// (AuctionID, Payment); Product(AuctionID, Manu, Type) keyed AuctionID.
struct CrosstabDb {
  Catalog catalog;
  int64_t num_auctions;
};

CrosstabDb MakeDb(Rng* rng, int64_t num_auctions) {
  Table payment{Schema({{"AuctionID", DataType::kInt64},
                        {"Payment", DataType::kString},
                        {"Price", DataType::kInt64}})};
  for (int64_t id = 1; id <= num_auctions; ++id) {
    if (rng->Chance(0.8)) {
      payment.AddRow({I(id), S("Credit"), I(rng->Int(10, 500))});
    }
    if (rng->Chance(0.5)) {
      payment.AddRow({I(id), S("ByAir"), I(rng->Int(10, 100))});
    }
    if (rng->Chance(0.2)) {
      payment.AddRow({I(id), S("Check"), I(rng->Int(10, 500))});  // unlisted
    }
  }
  GPIVOT_CHECK(payment.SetKey({"AuctionID", "Payment"}).ok());

  Table product{Schema({{"AuctionID", DataType::kInt64},
                        {"Manu", DataType::kString},
                        {"Type", DataType::kString}})};
  const char* manus[] = {"Sony", "Panasonic", "JVC"};
  const char* types[] = {"TV", "VCR"};
  for (int64_t id = 1; id <= num_auctions; ++id) {
    product.AddRow({I(id), S(manus[rng->Index(3)]), S(types[rng->Index(2)])});
  }
  GPIVOT_CHECK(product.SetKey({"AuctionID"}).ok());

  CrosstabDb db;
  db.num_auctions = num_auctions;
  GPIVOT_CHECK(db.catalog.AddTable("Payment", std::move(payment)).ok());
  GPIVOT_CHECK(db.catalog.AddTable("Product", std::move(product)).ok());
  return db;
}

// The Fig. 2 view over the db, written exactly as the paper draws it
// (lower pivot → join → groupby → upper pivot).
PlanPtr Fig2View(const Catalog& catalog) {
  PivotSpec lower;
  lower.pivot_by = {"Payment"};
  lower.pivot_on = {"Price"};
  lower.combos = {{S("Credit")}, {S("ByAir")}};
  PlanPtr pivoted = MakeGPivot(MakeScan(catalog, "Payment").value(), lower);
  PlanPtr joined = MakeJoin(std::move(pivoted),
                            MakeScan(catalog, "Product").value(),
                            {"AuctionID"});
  std::vector<AggSpec> aggs;
  for (const std::string& cell : lower.OutputColumnNames()) {
    aggs.push_back(AggSpec::Sum(cell, cell));
  }
  PlanPtr aggregated =
      MakeGroupBy(std::move(joined), {"Manu", "Type"}, aggs);
  PivotSpec upper;
  upper.pivot_by = {"Type"};
  upper.pivot_on = lower.OutputColumnNames();
  upper.combos = {{S("TV")}, {S("VCR")}};
  return MakeGPivot(std::move(aggregated), upper);
}

TEST(Fig2Test, RewriterProducesFig28Shape) {
  Rng rng(2005);
  CrosstabDb db = MakeDb(&rng, 60);
  PlanPtr view = Fig2View(db.catalog);

  ASSERT_OK_AND_ASSIGN(rewrite::RewriteOutcome outcome,
                       rewrite::PullUpPivots(view));
  // Both pivots end up merged into one GPIVOT over one GROUPBY.
  EXPECT_EQ(outcome.top_shape, rewrite::TopShape::kGPivotOverGroupByTop);
  EXPECT_GE(outcome.pivots_pulled, 2);   // through JOIN and GROUPBY
  EXPECT_GE(outcome.pivots_combined, 1); // Eq. 6 composition
  const auto* pivot = static_cast<const GPivotNode*>(outcome.plan.get());
  EXPECT_EQ(pivot->spec().pivot_by,
            (std::vector<std::string>{"Type", "Payment"}));
  EXPECT_EQ(pivot->spec().num_combos(), 4u);  // {TV,VCR} x {Credit,ByAir}

  // The rewritten query computes the same crosstab.
  ASSERT_OK_AND_ASSIGN(Table original, Evaluate(view, db.catalog));
  ASSERT_OK_AND_ASSIGN(Table rewritten, Evaluate(outcome.plan, db.catalog));
  EXPECT_TRUE(testing::BagEqualModuloColumnOrder(original, rewritten));
}

class Fig2MaintenanceTest
    : public ::testing::TestWithParam<RefreshStrategy> {};

TEST_P(Fig2MaintenanceTest, RandomBatchesStayConsistent) {
  Rng rng(777);
  CrosstabDb db = MakeDb(&rng, 80);
  PlanPtr view = Fig2View(db.catalog);
  ViewManager manager(std::move(db.catalog));
  ASSERT_OK(manager.DefineView("xt", view, GetParam()));

  for (int round = 0; round < 4; ++round) {
    // Random batch: delete some existing payment rows, insert some new
    // payment types for existing auctions.
    const Table* payment = manager.catalog().GetTable("Payment").value();
    Delta delta = Delta::Empty(payment->schema());
    std::unordered_set<Row, RowHash, RowEq> touched;
    for (const Row& row : payment->rows()) {
      if (rng.Chance(0.07)) {
        delta.deletes.AddRow(row);
        touched.insert({row[0], row[1]});
      }
    }
    for (int64_t id = 1; id <= 80; ++id) {
      if (!rng.Chance(0.05)) continue;
      Row candidate = {I(id), S("ByAir"), I(rng.Int(10, 99))};
      Row key = {candidate[0], candidate[1]};
      if (touched.count(key) > 0) continue;
      // Only insert if the (AuctionID, Payment) key is free.
      bool exists = false;
      for (const Row& row : payment->rows()) {
        if (row[0] == key[0] && row[1] == key[1]) exists = true;
      }
      if (!exists) {
        delta.inserts.AddRow(std::move(candidate));
        touched.insert(std::move(key));
      }
    }
    SourceDeltas deltas;
    deltas.emplace("Payment", std::move(delta));
    ASSERT_OK(manager.ApplyUpdate(deltas));

    ASSERT_OK_AND_ASSIGN(const ivm::MaterializedView* mv,
                         manager.GetView("xt"));
    ASSERT_OK_AND_ASSIGN(Table recomputed,
                         manager.RecomputeFromScratch("xt"));
    ASSERT_TRUE(BagEqual(recomputed, mv->table())) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, Fig2MaintenanceTest,
    ::testing::Values(RefreshStrategy::kFullRecompute,
                      RefreshStrategy::kInsertDelete,
                      RefreshStrategy::kUpdate,
                      RefreshStrategy::kCombinedGroupBy),
    [](const ::testing::TestParamInfo<RefreshStrategy>& info) {
      return ivm::RefreshStrategyToString(info.param);
    });

// Product-side changes flow through the pulled-up plan too: the pivot's key
// side changes rather than its measures.
TEST(Fig2Test, ProductSideDeltas) {
  Rng rng(778);
  CrosstabDb db = MakeDb(&rng, 50);
  PlanPtr view = Fig2View(db.catalog);
  ViewManager manager(std::move(db.catalog));
  ASSERT_OK(
      manager.DefineView("xt", view, RefreshStrategy::kCombinedGroupBy));

  // Delete one product (its auction's payments leave every subgroup) and
  // insert a replacement with a different manufacturer.
  const Table* product = manager.catalog().GetTable("Product").value();
  Delta delta = Delta::Empty(product->schema());
  delta.deletes.AddRow(product->rows()[0]);
  Row replacement = product->rows()[0];
  replacement[1] = S("Toshiba");
  delta.inserts.AddRow(std::move(replacement));
  SourceDeltas deltas;
  deltas.emplace("Product", std::move(delta));
  ASSERT_OK(manager.ApplyUpdate(deltas));

  ASSERT_OK_AND_ASSIGN(const ivm::MaterializedView* mv,
                       manager.GetView("xt"));
  ASSERT_OK_AND_ASSIGN(Table recomputed, manager.RecomputeFromScratch("xt"));
  EXPECT_TRUE(BagEqual(recomputed, mv->table()));
}

}  // namespace
}  // namespace gpivot
