// Unit tests for scalar expressions (three-valued logic, compilation,
// analysis) and aggregate accumulators (the paper's ⊥-disregarding
// semantics, Eq. 8 requirement).
#include "expr/expr.h"

#include <gtest/gtest.h>

#include "expr/aggregate.h"
#include "test_util.h"

namespace gpivot {
namespace {

using testing::D;
using testing::I;
using testing::N;
using testing::S;

class ExprTest : public ::testing::Test {
 protected:
  Schema schema_{{"a", DataType::kInt64},
                 {"b", DataType::kInt64},
                 {"s", DataType::kString}};

  Value Eval(const ExprPtr& expr, Row row) {
    auto compiled = CompileExpr(expr, schema_);
    GPIVOT_CHECK(compiled.ok()) << compiled.status().ToString();
    return (*compiled)(row);
  }
};

TEST_F(ExprTest, ComparisonBasics) {
  EXPECT_EQ(Eval(Eq(Col("a"), Lit(int64_t{1})), {I(1), I(2), S("x")}), I(1));
  EXPECT_EQ(Eval(Lt(Col("a"), Col("b")), {I(1), I(2), S("x")}), I(1));
  EXPECT_EQ(Eval(Ge(Col("a"), Col("b")), {I(1), I(2), S("x")}), I(0));
  EXPECT_EQ(Eval(Ne(Col("s"), Lit("x")), {I(1), I(2), S("x")}), I(0));
}

TEST_F(ExprTest, NullComparisonsYieldNull) {
  EXPECT_TRUE(Eval(Eq(Col("a"), Lit(int64_t{1})), {N(), I(2), S("x")})
                  .is_null());
  EXPECT_TRUE(Eval(Lt(Col("a"), Col("b")), {I(1), N(), S("x")}).is_null());
  EXPECT_FALSE(ValueIsTrue(Value::Null()));
}

TEST_F(ExprTest, ThreeValuedAnd) {
  ExprPtr e = And(Eq(Col("a"), Lit(int64_t{1})), Eq(Col("b"), Lit(int64_t{2})));
  EXPECT_EQ(Eval(e, {I(1), I(2), S("")}), I(1));
  EXPECT_EQ(Eval(e, {I(1), I(3), S("")}), I(0));
  // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
  EXPECT_EQ(Eval(e, {I(9), N(), S("")}), I(0));
  EXPECT_TRUE(Eval(e, {I(1), N(), S("")}).is_null());
}

TEST_F(ExprTest, ThreeValuedOr) {
  ExprPtr e = Or(Eq(Col("a"), Lit(int64_t{1})), Eq(Col("b"), Lit(int64_t{2})));
  EXPECT_EQ(Eval(e, {I(1), N(), S("")}), I(1));  // TRUE OR NULL = TRUE
  EXPECT_TRUE(Eval(e, {I(9), N(), S("")}).is_null());  // FALSE OR NULL
  EXPECT_EQ(Eval(e, {I(9), I(9), S("")}), I(0));
}

TEST_F(ExprTest, NotAndIsNull) {
  EXPECT_EQ(Eval(Not(Eq(Col("a"), Lit(int64_t{1}))), {I(2), I(0), S("")}),
            I(1));
  EXPECT_TRUE(
      Eval(Not(Eq(Col("a"), Lit(int64_t{1}))), {N(), I(0), S("")}).is_null());
  EXPECT_EQ(Eval(IsNull(Col("a")), {N(), I(0), S("")}), I(1));
  EXPECT_EQ(Eval(IsNotNull(Col("a")), {N(), I(0), S("")}), I(0));
}

TEST_F(ExprTest, Arithmetic) {
  EXPECT_EQ(Eval(Add(Col("a"), Col("b")), {I(2), I(3), S("")}), I(5));
  EXPECT_EQ(Eval(Mul(Col("a"), Lit(2.5)), {I(2), I(3), S("")}), D(5.0));
  EXPECT_TRUE(Eval(Sub(Col("a"), Col("b")), {N(), I(3), S("")}).is_null());
  // Division by zero yields NULL rather than a crash.
  EXPECT_TRUE(
      Eval(Div(Col("a"), Lit(int64_t{0})), {I(2), I(3), S("")}).is_null());
}

TEST_F(ExprTest, CaseExpression) {
  ExprPtr e = Case(Gt(Col("a"), Lit(int64_t{0})), Col("b"), Lit(Value::Null()));
  EXPECT_EQ(Eval(e, {I(1), I(42), S("")}), I(42));
  EXPECT_TRUE(Eval(e, {I(-1), I(42), S("")}).is_null());
  EXPECT_TRUE(Eval(e, {N(), I(42), S("")}).is_null());  // NULL cond -> else
}

TEST_F(ExprTest, CompileRejectsUnknownColumn) {
  EXPECT_FALSE(CompileExpr(Col("zz"), schema_).ok());
}

TEST_F(ExprTest, ReferencedColumnsDeduplicated) {
  ExprPtr e = And(Eq(Col("a"), Col("b")), Gt(Col("a"), Lit(int64_t{0})));
  EXPECT_EQ(ReferencedColumns(e), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(ExprOnlyReferences(e, {"a", "b", "c"}));
  EXPECT_FALSE(ExprOnlyReferences(e, {"a"}));
}

TEST_F(ExprTest, NullIntoleranceAnalysis) {
  EXPECT_TRUE(Eq(Col("a"), Lit(int64_t{1}))->IsNullIntolerant());
  EXPECT_TRUE(And(Eq(Col("a"), Lit(int64_t{1})), Lt(Col("b"), Col("a")))
                  ->IsNullIntolerant());
  EXPECT_FALSE(IsNull(Col("a"))->IsNullIntolerant());
  EXPECT_FALSE(
      Case(Eq(Col("a"), Lit(int64_t{1})), Col("b"), Col("a"))
          ->IsNullIntolerant());
  // OR is conservatively reported tolerant (see BoolOpExpr comment).
  EXPECT_FALSE(Or(Eq(Col("a"), Lit(int64_t{1})), Eq(Col("b"), Lit(int64_t{2})))
                   ->IsNullIntolerant());
}

TEST_F(ExprTest, ToStringRoundTripsShape) {
  ExprPtr e = And(Gt(Col("a"), Lit(int64_t{3})), IsNotNull(Col("s")));
  EXPECT_EQ(e->ToString(), "((a > 3) AND s IS NOT NULL)");
}

// ---- Aggregates --------------------------------------------------------------

TEST(AccumulatorTest, SumDisregardsNullAndYieldsNullWhenEmpty) {
  Accumulator acc(AggFunc::kSum);
  EXPECT_TRUE(acc.Finish().is_null());
  acc.Add(N());
  EXPECT_TRUE(acc.Finish().is_null());
  acc.Add(I(3));
  acc.Add(N());
  acc.Add(I(4));
  EXPECT_EQ(acc.Finish(), I(7));
}

TEST(AccumulatorTest, SumIntStaysIntMixedBecomesDouble) {
  Accumulator ints(AggFunc::kSum);
  ints.Add(I(1));
  ints.Add(I(2));
  EXPECT_TRUE(ints.Finish().is_int());
  Accumulator mixed(AggFunc::kSum);
  mixed.Add(I(1));
  mixed.Add(D(2.5));
  EXPECT_TRUE(mixed.Finish().is_double());
  EXPECT_DOUBLE_EQ(mixed.Finish().AsDouble(), 3.5);
}

TEST(AccumulatorTest, CountYieldsNullNotZero) {
  // The paper's Eq. 8 proof: COUNT must yield ⊥ (not 0) for empty input so
  // GPIVOT commutes with GROUPBY.
  Accumulator acc(AggFunc::kCount);
  acc.Add(N());
  EXPECT_TRUE(acc.Finish().is_null());
  acc.Add(I(5));
  EXPECT_EQ(acc.Finish(), I(1));
}

TEST(AccumulatorTest, CountStarCountsEverything) {
  Accumulator acc(AggFunc::kCountStar);
  acc.Add(N());
  acc.Add(I(1));
  EXPECT_EQ(acc.Finish(), I(2));
}

TEST(AccumulatorTest, MinMax) {
  Accumulator min_acc(AggFunc::kMin);
  Accumulator max_acc(AggFunc::kMax);
  for (const Value& v : {I(5), N(), I(2), I(9)}) {
    min_acc.Add(v);
    max_acc.Add(v);
  }
  EXPECT_EQ(min_acc.Finish(), I(2));
  EXPECT_EQ(max_acc.Finish(), I(9));
}

TEST(AccumulatorTest, Avg) {
  Accumulator acc(AggFunc::kAvg);
  acc.Add(I(2));
  acc.Add(I(4));
  acc.Add(N());
  EXPECT_DOUBLE_EQ(acc.Finish().AsDouble(), 3.0);
}

TEST(AggSpecTest, ToStringAndResultTypes) {
  EXPECT_EQ(AggSpec::Sum("price", "total").ToString(),
            "SUM(price) AS total");
  EXPECT_EQ(AggSpec::CountStar("cnt").ToString(), "COUNT(*) AS cnt");
  EXPECT_EQ(AggResultType(AggFunc::kCount, DataType::kString),
            DataType::kInt64);
  EXPECT_EQ(AggResultType(AggFunc::kAvg, DataType::kInt64),
            DataType::kDouble);
  EXPECT_EQ(AggResultType(AggFunc::kSum, DataType::kDouble),
            DataType::kDouble);
  EXPECT_EQ(AggResultType(AggFunc::kMin, DataType::kString),
            DataType::kString);
}

}  // namespace
}  // namespace gpivot
