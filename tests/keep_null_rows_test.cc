// Tests for the §8 semantic variant: PIVOT as defined in [8] / SQL Server,
// which keeps output rows whose cells are all ⊥. Execution, reference
// equivalence, and maintenance behaviour (insert/delete rules work; update
// rules are refused, matching §8's discussion that they would need an
// auxiliary per-key COUNT view).
#include <gtest/gtest.h>

#include "core/gpivot.h"
#include "core/pivot_spec.h"
#include "ivm/view_manager.h"
#include "rewrite/rules.h"
#include "test_util.h"
#include "util/random.h"
#include "util/string_util.h"

namespace gpivot {
namespace {

using ivm::Delta;
using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;
using testing::BagEqual;
using testing::I;
using testing::MakeTable;
using testing::N;
using testing::RandomVerticalSpec;
using testing::RandomVerticalTable;
using testing::S;

PivotSpec KeepSpec() {
  PivotSpec spec;
  spec.pivot_by = {"a"};
  spec.pivot_on = {"b"};
  spec.combos = {{S("x")}, {S("y")}};
  spec.keep_all_null_rows = true;
  return spec;
}

TEST(KeepNullRowsTest, UnlistedKeysSurviveWithAllNullCells) {
  Table t = MakeTable({{"k", DataType::kInt64},
                       {"a", DataType::kString},
                       {"b", DataType::kInt64}},
                      {{I(1), S("x"), I(10)},
                       {I(2), S("z"), I(20)},    // only an unlisted combo
                       {I(3), S("y"), I(30)}});
  EXPECT_TRUE(t.SetKey({"k", "a"}).ok());
  ASSERT_OK_AND_ASSIGN(Table kept, GPivot(t, KeepSpec()));
  // Key 2 appears with all-⊥ cells under the §8 semantics...
  Table expected = MakeTable(kept.schema().columns(),
                             {{I(1), I(10), N()},
                              {I(2), N(), N()},
                              {I(3), N(), I(30)}});
  EXPECT_TRUE(BagEqual(expected, kept));
  // ...and vanishes under the default Eq. 3 semantics.
  PivotSpec standard = KeepSpec();
  standard.keep_all_null_rows = false;
  ASSERT_OK_AND_ASSIGN(Table dropped, GPivot(t, standard));
  EXPECT_EQ(dropped.num_rows(), 2u);
}

TEST(KeepNullRowsTest, MatchesOuterJoinReference) {
  Rng rng(88);
  for (int trial = 0; trial < 5; ++trial) {
    RandomVerticalSpec vspec;
    vspec.num_dims = 1;
    vspec.num_measures = 2;
    vspec.dim_alphabet = 4;  // half the alphabet is unlisted
    vspec.null_fraction = 0.2;
    Table input = RandomVerticalTable(vspec, &rng);
    PivotSpec spec;
    spec.pivot_by = {"a1"};
    spec.pivot_on = {"b1", "b2"};
    spec.combos = {{S("v0")}, {S("v1")}};
    spec.keep_all_null_rows = true;
    ASSERT_OK_AND_ASSIGN(Table fast, GPivot(input, spec));
    ASSERT_OK_AND_ASSIGN(Table reference, GPivotReference(input, spec));
    EXPECT_TRUE(BagEqual(reference, fast)) << "trial " << trial;
  }
}

TEST(KeepNullRowsTest, RewriteRulesRefuse) {
  Table t = MakeTable({{"k", DataType::kInt64},
                       {"a", DataType::kString},
                       {"b", DataType::kInt64}},
                      {{I(1), S("x"), I(10)}});
  EXPECT_TRUE(t.SetKey({"k", "a"}).ok());
  Catalog catalog;
  ASSERT_OK(catalog.AddTable("t", std::move(t)));
  ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog, "t"));
  PlanPtr pivot = MakeGPivot(scan, KeepSpec());

  PlanPtr select = MakeSelect(pivot, Gt(Col("k"), Lit(int64_t{0})));
  EXPECT_TRUE(
      rewrite::PullPivotThroughSelect(select).status().IsNotApplicable());
  EXPECT_TRUE(rewrite::SplitPivotByMeasures(pivot, 1).status()
                  .IsNotApplicable());
}

TEST(KeepNullRowsTest, UpdateStrategyRefusedAtCompileTime) {
  Table t = MakeTable({{"k", DataType::kInt64},
                       {"a", DataType::kString},
                       {"b", DataType::kInt64}},
                      {{I(1), S("x"), I(10)}});
  EXPECT_TRUE(t.SetKey({"k", "a"}).ok());
  Catalog catalog;
  ASSERT_OK(catalog.AddTable("t", std::move(t)));
  ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog, "t"));
  PlanPtr pivot = MakeGPivot(scan, KeepSpec());
  auto compiled =
      ivm::MaintenancePlan::Compile(pivot, RefreshStrategy::kUpdate);
  EXPECT_TRUE(compiled.status().IsNotApplicable());
}

// The §8 case the update rules cannot handle: deleting the last *listed*
// row of a key must keep the (k, ⊥, …, ⊥) view row as long as other rows of
// that key remain. The insert/delete rules get this right.
TEST(KeepNullRowsTest, InsertDeleteMaintenanceKeepsAllNullRow) {
  Table t = MakeTable({{"k", DataType::kInt64},
                       {"a", DataType::kString},
                       {"b", DataType::kInt64}},
                      {{I(1), S("x"), I(10)},
                       {I(1), S("z"), I(99)},   // unlisted combo, same key
                       {I(2), S("y"), I(20)}});
  EXPECT_TRUE(t.SetKey({"k", "a"}).ok());
  Catalog catalog;
  ASSERT_OK(catalog.AddTable("t", std::move(t)));
  ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog, "t"));
  PlanPtr view = MakeGPivot(scan, KeepSpec());

  ViewManager manager(std::move(catalog));
  ASSERT_OK(manager.DefineView("v", view, RefreshStrategy::kInsertDelete));
  EXPECT_EQ(manager.GetView("v").value()->num_rows(), 2u);

  SourceDeltas deltas;
  Delta delta = Delta::Empty(
      manager.catalog().GetTable("t").value()->schema());
  delta.deletes.AddRow({I(1), S("x"), I(10)});
  deltas.emplace("t", std::move(delta));
  ASSERT_OK(manager.ApplyUpdate(deltas));

  const ivm::MaterializedView* mv = manager.GetView("v").value();
  ASSERT_OK_AND_ASSIGN(Table recomputed, manager.RecomputeFromScratch("v"));
  EXPECT_TRUE(BagEqual(recomputed, mv->table()));
  // Key 1 is still present — its unlisted 'z' row keeps it alive — but all
  // its cells are ⊥ now.
  bool found = false;
  for (const Row& row : mv->table().rows()) {
    if (row[0] == I(1)) {
      found = true;
      EXPECT_TRUE(row[1].is_null());
      EXPECT_TRUE(row[2].is_null());
    }
  }
  EXPECT_TRUE(found);
}

TEST(KeepNullRowsTest, InsertDeleteMaintenanceRandomized) {
  Rng rng(4242);
  for (int trial = 0; trial < 3; ++trial) {
    RandomVerticalSpec vspec;
    vspec.num_dims = 1;
    vspec.num_measures = 1;
    vspec.dim_alphabet = 4;
    vspec.num_rows = 50;
    Table base = RandomVerticalTable(vspec, &rng);
    Catalog catalog;
    ASSERT_OK(catalog.AddTable("t", base));
    ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog, "t"));
    PivotSpec spec;
    spec.pivot_by = {"a1"};
    spec.pivot_on = {"b1"};
    spec.combos = {{S("v0")}, {S("v1")}};
    spec.keep_all_null_rows = true;
    PlanPtr view = MakeGPivot(scan, spec);

    ViewManager manager(std::move(catalog));
    ASSERT_OK(manager.DefineView("v", view, RefreshStrategy::kInsertDelete));

    for (int round = 0; round < 3; ++round) {
      const Table* current = manager.catalog().GetTable("t").value();
      Delta delta = Delta::Empty(current->schema());
      for (const Row& row : current->rows()) {
        if (rng.Chance(0.15)) delta.deletes.AddRow(row);
      }
      SourceDeltas deltas;
      deltas.emplace("t", std::move(delta));
      ASSERT_OK(manager.ApplyUpdate(deltas));
      ASSERT_OK_AND_ASSIGN(Table recomputed,
                           manager.RecomputeFromScratch("v"));
      ASSERT_TRUE(
          BagEqual(recomputed, manager.GetView("v").value()->table()))
          << "trial " << trial << " round " << round;
    }
  }
}

}  // namespace
}  // namespace gpivot
