// Tests for logical plan nodes: schema derivation, key inference (Fig. 8's
// prerequisite analysis), evaluation, and printing.
#include "algebra/plan.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace gpivot {
namespace {

using testing::I;
using testing::MakeTable;
using testing::S;

class AlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table fact = MakeTable({{"k", DataType::kInt64},
                            {"a", DataType::kString},
                            {"b", DataType::kInt64}},
                           {{I(1), S("x"), I(10)},
                            {I(1), S("y"), I(20)},
                            {I(2), S("x"), I(30)}});
    ASSERT_OK(fact.SetKey({"k", "a"}));
    Table dim = MakeTable(
        {{"k", DataType::kInt64}, {"label", DataType::kString}},
        {{I(1), S("one")}, {I(2), S("two")}});
    ASSERT_OK(dim.SetKey({"k"}));
    ASSERT_OK(catalog_.AddTable("fact", std::move(fact)));
    ASSERT_OK(catalog_.AddTable("dim", std::move(dim)));
  }

  Catalog catalog_;
};

TEST_F(AlgebraTest, ScanCapturesSchemaAndKey) {
  ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog_, "fact"));
  ASSERT_OK_AND_ASSIGN(Schema schema, scan->OutputSchema());
  EXPECT_EQ(schema.num_columns(), 3u);
  ASSERT_OK_AND_ASSIGN(auto key, scan->OutputKey());
  EXPECT_EQ(key, (std::vector<std::string>{"k", "a"}));
  EXPECT_FALSE(MakeScan(catalog_, "nope").ok());
}

TEST_F(AlgebraTest, SelectPreservesKey) {
  ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog_, "fact"));
  PlanPtr select = MakeSelect(scan, Gt(Col("b"), Lit(int64_t{15})));
  ASSERT_OK_AND_ASSIGN(auto key, select->OutputKey());
  EXPECT_EQ(key, (std::vector<std::string>{"k", "a"}));
  ASSERT_OK_AND_ASSIGN(Table result, Evaluate(select, catalog_));
  EXPECT_EQ(result.num_rows(), 2u);
}

TEST_F(AlgebraTest, ProjectKeyAnalysis) {
  ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog_, "fact"));
  // Keeping all key columns preserves the key.
  PlanPtr keep = MakeProject(scan, {"a", "k"});
  ASSERT_OK_AND_ASSIGN(auto key, keep->OutputKey());
  EXPECT_FALSE(key.empty());
  // Dropping a key column loses it (Fig. 8 prerequisite fails).
  PlanPtr drop = MakeDrop(scan, {"a"});
  ASSERT_OK_AND_ASSIGN(auto lost, drop->OutputKey());
  EXPECT_TRUE(lost.empty());
}

TEST_F(AlgebraTest, JoinKeyInferenceFkJoin) {
  ASSERT_OK_AND_ASSIGN(PlanPtr fact, MakeScan(catalog_, "fact"));
  ASSERT_OK_AND_ASSIGN(PlanPtr dim, MakeScan(catalog_, "dim"));
  // FK join into the dimension's key: the fact key survives.
  PlanPtr join = MakeJoin(fact, dim, {"k"});
  ASSERT_OK_AND_ASSIGN(auto key, join->OutputKey());
  EXPECT_EQ(key, (std::vector<std::string>{"k", "a"}));
  ASSERT_OK_AND_ASSIGN(Schema schema, join->OutputSchema());
  EXPECT_EQ(schema.ColumnNames(),
            (std::vector<std::string>{"k", "a", "b", "label"}));
}

TEST_F(AlgebraTest, JoinKeyInferenceReversed) {
  ASSERT_OK_AND_ASSIGN(PlanPtr fact, MakeScan(catalog_, "fact"));
  ASSERT_OK_AND_ASSIGN(PlanPtr dim, MakeScan(catalog_, "dim"));
  PlanPtr join = MakeJoin(dim, fact, {"k"});
  ASSERT_OK_AND_ASSIGN(auto key, join->OutputKey());
  // Each dim row matches many fact rows; the fact key (mapped to left
  // names) is the output key.
  EXPECT_EQ(key, (std::vector<std::string>{"k", "a"}));
}

TEST_F(AlgebraTest, GroupByKeyIsGroupColumns) {
  ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog_, "fact"));
  PlanPtr groupby = MakeGroupBy(scan, {"a"}, {AggSpec::Sum("b", "total")});
  ASSERT_OK_AND_ASSIGN(auto key, groupby->OutputKey());
  EXPECT_EQ(key, (std::vector<std::string>{"a"}));
  ASSERT_OK_AND_ASSIGN(Schema schema, groupby->OutputSchema());
  EXPECT_EQ(schema.column(1).name, "total");
  EXPECT_EQ(schema.column(1).type, DataType::kInt64);
}

TEST_F(AlgebraTest, GPivotSchemaAndKey) {
  ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog_, "fact"));
  PivotSpec spec;
  spec.pivot_by = {"a"};
  spec.pivot_on = {"b"};
  spec.combos = {{S("x")}, {S("y")}};
  PlanPtr pivot = MakeGPivot(scan, spec);
  ASSERT_OK_AND_ASSIGN(Schema schema, pivot->OutputSchema());
  EXPECT_EQ(schema.ColumnNames(),
            (std::vector<std::string>{"k", "x**b", "y**b"}));
  ASSERT_OK_AND_ASSIGN(auto key, pivot->OutputKey());
  EXPECT_EQ(key, (std::vector<std::string>{"k"}));
}

TEST_F(AlgebraTest, MapKeyAnalysis) {
  ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog_, "fact"));
  // Pass-through of all key columns preserves the key.
  PlanPtr good = MakeMap(scan, {{"k", Col("k")},
                                {"a", Col("a")},
                                {"b2", Mul(Col("b"), Lit(int64_t{2}))}});
  ASSERT_OK_AND_ASSIGN(auto key, good->OutputKey());
  EXPECT_EQ(key, (std::vector<std::string>{"k", "a"}));
  // Renaming a key column loses the analysis.
  PlanPtr renamed = MakeMap(scan, {{"kk", Col("k")}, {"a", Col("a")}});
  ASSERT_OK_AND_ASSIGN(auto lost, renamed->OutputKey());
  EXPECT_TRUE(lost.empty());
}

TEST_F(AlgebraTest, PlanPrintingShowsTree) {
  ASSERT_OK_AND_ASSIGN(PlanPtr fact, MakeScan(catalog_, "fact"));
  ASSERT_OK_AND_ASSIGN(PlanPtr dim, MakeScan(catalog_, "dim"));
  PlanPtr plan = MakeSelect(MakeJoin(fact, dim, {"k"}),
                            Gt(Col("b"), Lit(int64_t{0})));
  std::string printed = PlanToString(plan);
  EXPECT_NE(printed.find("SELECT"), std::string::npos);
  EXPECT_NE(printed.find("JOIN k=k"), std::string::npos);
  EXPECT_NE(printed.find("  SCAN fact"), std::string::npos);
}

TEST_F(AlgebraTest, EvaluateSeesCurrentCatalogContents) {
  ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog_, "fact"));
  ASSERT_OK_AND_ASSIGN(Table before, Evaluate(scan, catalog_));
  catalog_.GetMutableTable("fact")->AddRow({I(3), S("z"), I(40)});
  ASSERT_OK_AND_ASSIGN(Table after, Evaluate(scan, catalog_));
  EXPECT_EQ(after.num_rows(), before.num_rows() + 1);
}

TEST_F(AlgebraTest, GUnpivotSchemaDerivation) {
  ASSERT_OK_AND_ASSIGN(PlanPtr scan, MakeScan(catalog_, "fact"));
  PivotSpec spec;
  spec.pivot_by = {"a"};
  spec.pivot_on = {"b"};
  spec.combos = {{S("x")}, {S("y")}};
  PlanPtr pivot = MakeGPivot(scan, spec);
  PlanPtr unpivot = MakeGUnpivot(pivot, UnpivotSpec::InverseOf(spec));
  ASSERT_OK_AND_ASSIGN(Schema schema, unpivot->OutputSchema());
  EXPECT_EQ(schema.ColumnNames(),
            (std::vector<std::string>{"k", "a", "b"}));
  ASSERT_OK_AND_ASSIGN(auto key, unpivot->OutputKey());
  EXPECT_EQ(key, (std::vector<std::string>{"k", "a"}));
}

}  // namespace
}  // namespace gpivot
