// End-to-end durability properties. The headline invariant: kill the
// process (simulated by an injected fault treated as a crash — the manager
// is discarded with whatever bytes made it to disk) at EVERY fault-
// injection site during ingest, checkpointing, and recovery itself, then
// recover and resume — base catalog, all three views, and the epoch
// sequence must be byte-identical to an uninterrupted run. Plus the
// satellites: epoch-seq continuity across restarts (no reset, no duplicate
// JSONL seqs), no-op epochs staying out of the WAL, checkpoint cadence,
// and compacted replay matching sequential replay with fewer rows applied.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/gpivot.h"
#include "ivm/delta.h"
#include "ivm/view_manager.h"
#include "obs/event_log.h"
#include "storage/checkpoint.h"
#include "storage/recovery.h"
#include "storage/serialize.h"
#include "storage/wal.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/file_io.h"

namespace gpivot::storage {
namespace {

using ivm::Delta;
using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;
using gpivot::testing::I;
using gpivot::testing::MakeTable;
using gpivot::testing::S;

Catalog PivotCatalog() {
  Catalog catalog;
  Table items = MakeTable({{"ID", DataType::kInt64},
                           {"Attribute", DataType::kString},
                           {"Value", DataType::kString}},
                          {{I(1), S("Manu"), S("Sony")},
                           {I(1), S("Type"), S("TV")},
                           {I(2), S("Manu"), S("Panasonic")},
                           {I(2), S("Type"), S("DVD")},
                           {I(3), S("Manu"), S("JVC")}});
  EXPECT_TRUE(items.SetKey({"ID", "Attribute"}).ok());
  Table payment = MakeTable(
      {{"ID", DataType::kInt64}, {"Price", DataType::kInt64}},
      {{I(1), I(200)}, {I(2), I(300)}, {I(3), I(150)}});
  EXPECT_TRUE(payment.SetKey({"ID"}).ok());
  EXPECT_TRUE(catalog.AddTable("Items", std::move(items)).ok());
  EXPECT_TRUE(catalog.AddTable("Payment", std::move(payment)).ok());
  return catalog;
}

// Three views over the fixture, one per maintenance flavor the epoch
// machinery distinguishes: pivot+join under the Fig. 23 update rules, a
// plain pivot under insert/delete propagation, and a full-recompute view.
std::vector<ViewDefinition> Definitions(const Catalog& catalog) {
  PlanPtr items = MakeScan(catalog, "Items").value();
  PlanPtr payment = MakeScan(catalog, "Payment").value();
  PivotSpec spec;
  spec.pivot_by = {"Attribute"};
  spec.pivot_on = {"Value"};
  spec.combos = {{S("Manu")}, {S("Type")}};
  PlanPtr pivot = MakeGPivot(items, spec);
  return {
      {"v_join", MakeJoin(pivot, payment, {"ID"}), RefreshStrategy::kUpdate},
      {"v_pivot", pivot, RefreshStrategy::kInsertDelete},
      {"v_full", pivot, RefreshStrategy::kFullRecompute},
  };
}

// Deterministic churn batches against Items (inserts, deletes, updates),
// every batch valid in sequence; updates and deletes of earlier batches'
// rows create the cross-batch cancellation compacted replay must fold.
std::vector<SourceDeltas> WorkloadBatches(const Catalog& catalog,
                                          uint32_t seed, size_t num_batches) {
  std::mt19937 rng(seed);
  std::vector<Row> live = catalog.GetTable("Items").value()->rows();
  const Schema& schema = catalog.GetTable("Items").value()->schema();
  int64_t fresh_id = 100;
  std::vector<SourceDeltas> batches;
  for (size_t b = 0; b < num_batches; ++b) {
    Delta delta = Delta::Empty(schema);
    std::vector<Row> pending_inserts;
    size_t ops = 1 + rng() % 3;
    for (size_t op = 0; op < ops; ++op) {
      switch (rng() % 3) {
        case 0: {
          if (live.empty()) break;
          size_t pick = rng() % live.size();
          delta.deletes.AddRow(live[pick]);
          live.erase(live.begin() + pick);
          break;
        }
        case 1: {
          const char* attr = (rng() % 2 == 0) ? "Manu" : "Type";
          Row row{I(fresh_id++), S(attr),
                  Value::Str("val" + std::to_string(rng() % 4))};
          delta.inserts.AddRow(row);
          pending_inserts.push_back(std::move(row));
          break;
        }
        case 2: {
          if (live.empty()) break;
          size_t pick = rng() % live.size();
          Row old = live[pick];
          Row updated = old;
          updated[2] = Value::Str("upd" + std::to_string(rng() % 4));
          if (updated == old) break;
          delta.deletes.AddRow(old);
          delta.inserts.AddRow(updated);
          live.erase(live.begin() + pick);
          pending_inserts.push_back(std::move(updated));
          break;
        }
      }
    }
    if (delta.empty()) {  // keep every batch a real (seq-consuming) epoch
      Row row{I(fresh_id++), S("Manu"), S("fill")};
      delta.inserts.AddRow(row);
      pending_inserts.push_back(std::move(row));
    }
    live.insert(live.end(), pending_inserts.begin(), pending_inserts.end());
    SourceDeltas deltas;
    deltas.emplace("Items", std::move(delta));
    batches.push_back(std::move(deltas));
  }
  return batches;
}

// Canonical bytes of the full logical state: epoch seq + every base table
// and view, sorted — the "byte-identical" in the headline invariant.
// Physical row order is not part of the logical state (compacted replay
// may legitimately reorder), so tables are sorted before encoding.
std::string Fingerprint(const ViewManager& manager, bool include_seq = true) {
  std::string out =
      include_seq ? "seq=" + std::to_string(manager.epoch_seq()) + ";" : "";
  std::vector<std::string> names = manager.catalog().TableNames();
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    out += name + ":";
    out += EncodeTableToString(
        manager.catalog().GetTable(name).value()->Sorted());
  }
  for (const std::string& name : manager.ViewNames()) {
    out += name + ":";
    out += EncodeTableToString(manager.GetView(name).value()->table().Sorted());
  }
  return out;
}

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/recovery_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

StorageOptions Options(const std::string& dir, uint64_t cadence,
                       ReplayMode mode = ReplayMode::kCompacted) {
  StorageOptions options;
  options.dir = dir;
  options.checkpoint_every_n_epochs = cadence;
  options.replay_mode = mode;
  return options;
}

// The reference: the same workload with no durability layer at all.
std::string UndurableFingerprint(const std::vector<SourceDeltas>& batches,
                                 bool include_seq = true) {
  ViewManager manager(PivotCatalog());
  for (const ViewDefinition& def : Definitions(manager.catalog())) {
    EXPECT_TRUE(
        manager.DefineView(def.name, def.query, def.strategy).ok());
  }
  for (const SourceDeltas& batch : batches) {
    EXPECT_TRUE(manager.ApplyUpdate(batch).ok());
  }
  return Fingerprint(manager, include_seq);
}

TEST(RecoveryTest, FirstBootThenRecoverReplaysWal) {
  std::string dir = FreshDir("basic");
  std::vector<SourceDeltas> batches =
      WorkloadBatches(PivotCatalog(), 42, 4);
  std::string expected = UndurableFingerprint(batches);

  {
    auto dvm = DurableViewManager::Open(PivotCatalog(),
                                        Definitions(PivotCatalog()),
                                        Options(dir, 0));
    ASSERT_TRUE(dvm.ok()) << dvm.status().ToString();
    EXPECT_FALSE((*dvm)->recovery_report().used_checkpoint);
    EXPECT_EQ((*dvm)->recovery_report().epoch_seq, 0u);
    for (const SourceDeltas& batch : batches) {
      ASSERT_OK((*dvm)->ApplyUpdate(batch));
    }
    EXPECT_EQ((*dvm)->manager()->epoch_seq(), batches.size());
    EXPECT_EQ(Fingerprint(*(*dvm)->manager()), expected);
    // Cadence 0, no explicit checkpoint: everything is in the WAL.
    auto wal = ReadWal(WalPath(dir));
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal->entries.size(), batches.size());
  }

  auto dvm = DurableViewManager::Open(PivotCatalog(),
                                      Definitions(PivotCatalog()),
                                      Options(dir, 0));
  ASSERT_TRUE(dvm.ok()) << dvm.status().ToString();
  const RecoveryReport& report = (*dvm)->recovery_report();
  EXPECT_TRUE(report.used_checkpoint);
  EXPECT_EQ(report.checkpoint_seq, 0u);
  EXPECT_EQ(report.wal_entries_replayed, batches.size());
  EXPECT_EQ(report.epoch_seq, batches.size());
  ASSERT_OK((*dvm)->manager()->Audit());
  EXPECT_EQ(Fingerprint(*(*dvm)->manager()), expected);
  // Postcondition: WAL empty, newest checkpoint at the recovered seq.
  auto wal = ReadWal(WalPath(dir));
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->entries.size(), 0u);
  auto checkpoints = FindCheckpoints(dir);
  ASSERT_TRUE(checkpoints.ok());
  ASSERT_FALSE(checkpoints->empty());
  EXPECT_EQ((*checkpoints)[0], CheckpointFileName(batches.size()));
}

// Satellite regression: post-recovery epoch numbering continues where the
// pre-crash run stopped — the JSONL epoch log across a restart carries
// strictly increasing seqs with no reset to 0 and no duplicates from
// replayed epochs.
TEST(RecoveryTest, EpochSeqContinuesAcrossRestartInJsonl) {
  std::string dir = FreshDir("jsonl");
  std::string log_path = dir + "_events.jsonl";
  std::filesystem::remove(log_path);
  std::vector<SourceDeltas> batches =
      WorkloadBatches(PivotCatalog(), 7, 5);

  {
    obs::EventLog log(log_path);
    ASSERT_TRUE(log.ok()) << log.error();
    StorageOptions options = Options(dir, 0);
    options.event_log = &log;
    auto dvm = DurableViewManager::Open(PivotCatalog(),
                                        Definitions(PivotCatalog()), options);
    ASSERT_TRUE(dvm.ok()) << dvm.status().ToString();
    for (size_t i = 0; i < 3; ++i) ASSERT_OK((*dvm)->ApplyUpdate(batches[i]));
  }
  {
    obs::EventLog log(log_path);
    ASSERT_TRUE(log.ok()) << log.error();
    StorageOptions options = Options(dir, 0);
    options.event_log = &log;
    auto dvm = DurableViewManager::Open(PivotCatalog(),
                                        Definitions(PivotCatalog()), options);
    ASSERT_TRUE(dvm.ok()) << dvm.status().ToString();
    EXPECT_EQ((*dvm)->manager()->epoch_seq(), 3u);
    for (size_t i = 3; i < 5; ++i) ASSERT_OK((*dvm)->ApplyUpdate(batches[i]));
  }

  auto contents = ReadFileToString(log_path);
  ASSERT_TRUE(contents.ok());
  std::vector<uint64_t> seqs;
  size_t recovery_lines = 0;
  size_t start = 0;
  while (start < contents->size()) {
    size_t end = contents->find('\n', start);
    if (end == std::string::npos) end = contents->size();
    std::string line = contents->substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line.find("\"recovery\"") != std::string::npos) {
      ++recovery_lines;
      continue;
    }
    unsigned long long seq = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "{\"seq\": %llu", &seq), 1)
        << "unparseable epoch line: " << line;
    seqs.push_back(seq);
  }
  EXPECT_EQ(recovery_lines, 2u);  // one per Open
  // 1..5, strictly increasing: no reset after restart, and the replayed
  // epochs (1..3 run again during recovery) emitted no duplicate lines.
  ASSERT_EQ(seqs.size(), 5u);
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], i + 1);
  }
}

TEST(RecoveryTest, NoOpEpochsEmitNoWalEntries) {
  std::string dir = FreshDir("noop");
  auto dvm = DurableViewManager::Open(PivotCatalog(),
                                      Definitions(PivotCatalog()),
                                      Options(dir, 0));
  ASSERT_TRUE(dvm.ok()) << dvm.status().ToString();

  ASSERT_OK((*dvm)->ApplyUpdate(SourceDeltas{}));
  SourceDeltas empty_named;
  const Schema& schema = (*dvm)->manager()->catalog().GetTable("Items")
                             .value()->schema();
  empty_named.emplace("Items", Delta::Empty(schema));
  ASSERT_OK((*dvm)->ApplyUpdate(empty_named));

  EXPECT_EQ((*dvm)->manager()->epoch_seq(), 0u);
  auto wal = ReadWal(WalPath(dir));
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->entries.size(), 0u);
}

TEST(RecoveryTest, CheckpointCadenceResetsWalAndPrunes) {
  std::string dir = FreshDir("cadence");
  std::vector<SourceDeltas> batches =
      WorkloadBatches(PivotCatalog(), 13, 6);
  auto dvm = DurableViewManager::Open(PivotCatalog(),
                                      Definitions(PivotCatalog()),
                                      Options(dir, 2));
  ASSERT_TRUE(dvm.ok()) << dvm.status().ToString();
  for (const SourceDeltas& batch : batches) {
    ASSERT_OK((*dvm)->ApplyUpdate(batch));
  }
  // 6 committed epochs at cadence 2: last checkpoint at seq 6, WAL empty.
  auto wal = ReadWal(WalPath(dir));
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->entries.size(), 0u);
  auto checkpoints = FindCheckpoints(dir);
  ASSERT_TRUE(checkpoints.ok());
  ASSERT_LE(checkpoints->size(), 2u);  // pruned to the newest two
  EXPECT_EQ((*checkpoints)[0], CheckpointFileName(6));
  // On-demand checkpoint is idempotent at the same seq.
  ASSERT_OK((*dvm)->Checkpoint());
  EXPECT_EQ(Fingerprint(*(*dvm)->manager()),
            UndurableFingerprint(batches));
}

// Live (non-crash) fault handling: a fault anywhere inside an epoch —
// including the WAL append itself — must leave manager and WAL mutually
// consistent without a restart: no WAL entry for an epoch that is not in
// memory, and a clean retry lands the batch.
TEST(RecoveryTest, LiveFaultSweepKeepsWalAndManagerConsistent) {
  std::string dir = FreshDir("livefault");
  std::vector<SourceDeltas> batches =
      WorkloadBatches(PivotCatalog(), 99, 4);
  auto dvm = DurableViewManager::Open(PivotCatalog(),
                                      Definitions(PivotCatalog()),
                                      Options(dir, 0));
  ASSERT_TRUE(dvm.ok()) << dvm.status().ToString();

  FaultInjector& injector = FaultInjector::Global();
  size_t applied = 0;
  size_t faults_hit = 0;
  for (size_t n = 1; applied < batches.size(); ++n) {
    ASSERT_LT(n, 200u) << "sweep did not terminate";
    injector.Arm(n);
    Status st = (*dvm)->ApplyUpdate(batches[applied]);
    bool fired = injector.fired();
    injector.Disarm();
    if (st.ok()) {
      ASSERT_FALSE(fired);
      ++applied;
      continue;
    }
    ASSERT_TRUE(fired) << "non-injected failure: " << st.ToString();
    ++faults_hit;
    ASSERT_OK((*dvm)->manager()->Audit());
    // One WAL entry per committed epoch, nothing for the failed attempt.
    // Failed epochs still consume seqs (RecordEpoch numbers rejections
    // too), so committed seqs are strictly increasing but sparse.
    auto wal = ReadWal(WalPath(dir));
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal->entries.size(), applied);
    for (size_t e = 1; e < wal->entries.size(); ++e) {
      EXPECT_LT(wal->entries[e - 1].seq, wal->entries[e].seq);
    }
  }
  EXPECT_GT(faults_hit, batches.size());  // several points per epoch
  // Same logical state as the undurable run; only the epoch counter
  // differs (it also ticked for every injected failure).
  EXPECT_EQ(Fingerprint(*(*dvm)->manager(), /*include_seq=*/false),
            UndurableFingerprint(batches, /*include_seq=*/false));
  EXPECT_GE((*dvm)->manager()->epoch_seq(), batches.size() + faults_hit);
}

// The headline invariant. Arm the n-th fault point across an entire
// lifecycle (first boot, every epoch, cadence checkpoints), treat the
// fired fault as a process kill — whatever bytes reached disk stay, the
// manager object is discarded — then recover, resume the workload from
// the recovered seq, and require the final state byte-identical to the
// uninterrupted run. n sweeps every site the lifecycle traverses.
TEST(RecoveryTest, CrashLoopSweepRecoversIdenticalState) {
  std::vector<SourceDeltas> batches =
      WorkloadBatches(PivotCatalog(), 1234, 5);
  std::string expected = UndurableFingerprint(batches);
  FaultInjector& injector = FaultInjector::Global();

  bool exhausted = false;
  for (size_t n = 1; !exhausted; ++n) {
    ASSERT_LT(n, 400u) << "sweep did not terminate";
    SCOPED_TRACE("fault point n=" + std::to_string(n));
    std::string dir = FreshDir("crash_" + std::to_string(n));

    injector.Arm(n);
    Status st = [&]() -> Status {
      GPIVOT_ASSIGN_OR_RETURN(
          std::unique_ptr<DurableViewManager> dvm,
          DurableViewManager::Open(PivotCatalog(),
                                   Definitions(PivotCatalog()),
                                   Options(dir, 2)));
      for (const SourceDeltas& batch : batches) {
        GPIVOT_RETURN_NOT_OK(dvm->ApplyUpdate(batch));
      }
      return Status::OK();
    }();
    bool fired = injector.fired();
    injector.Disarm();

    if (st.ok()) {
      EXPECT_FALSE(fired);
      exhausted = true;  // n passed the last fault point: sweep complete
    } else {
      ASSERT_TRUE(fired) << "non-injected failure: " << st.ToString();
    }

    // Recover (clean) and resume from the recovered seq. Batch i commits
    // as seq i+1, so the recovered seq says exactly which batches are
    // already in: exactly-once regardless of where the crash hit.
    auto recovered = DurableViewManager::Open(PivotCatalog(),
                                              Definitions(PivotCatalog()),
                                              Options(dir, 2));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    uint64_t seq = (*recovered)->manager()->epoch_seq();
    ASSERT_LE(seq, batches.size());
    for (size_t i = static_cast<size_t>(seq); i < batches.size(); ++i) {
      ASSERT_OK((*recovered)->ApplyUpdate(batches[i]));
    }
    ASSERT_OK((*recovered)->manager()->Audit());
    EXPECT_EQ(Fingerprint(*(*recovered)->manager()), expected);
  }
}

// The headline invariant under sharded maintenance: the same crash-loop
// sweep with stage and commit split across 4 shards on a 4-thread
// executor. The armed fault now lands inside per-shard commit sites
// ("ExecuteMergePlan::shard-commit") running on pool threads; whichever
// shard it hits, the per-shard undo logs must roll the epoch back to a
// state whose WAL/checkpoint bytes recover — under ANY shard count —
// to the exact undurable reference. Recovery runs serially (fresh Open),
// so this also proves sharded commits leave nothing shard-shaped on disk.
TEST(RecoveryTest, ShardedCrashLoopSweepRecoversIdenticalState) {
  std::vector<SourceDeltas> batches =
      WorkloadBatches(PivotCatalog(), 1234, 5);
  std::string expected = UndurableFingerprint(batches);
  FaultInjector& injector = FaultInjector::Global();
  ExecContext ctx;
  ctx.num_threads = 4;
  ctx.min_parallel_rows = 1;
  ivm::ShardingOptions sharding;
  sharding.num_shards = 4;

  bool exhausted = false;
  for (size_t n = 1; !exhausted; ++n) {
    ASSERT_LT(n, 400u) << "sweep did not terminate";
    SCOPED_TRACE("fault point n=" + std::to_string(n));
    std::string dir = FreshDir("shard_crash_" + std::to_string(n));

    injector.Arm(n);
    Status st = [&]() -> Status {
      GPIVOT_ASSIGN_OR_RETURN(
          std::unique_ptr<DurableViewManager> dvm,
          DurableViewManager::Open(PivotCatalog(),
                                   Definitions(PivotCatalog()),
                                   Options(dir, 2)));
      dvm->manager()->set_exec_context(ctx);
      dvm->manager()->set_sharding(sharding);
      for (const SourceDeltas& batch : batches) {
        GPIVOT_RETURN_NOT_OK(dvm->ApplyUpdate(batch));
      }
      return Status::OK();
    }();
    bool fired = injector.fired();
    injector.Disarm();

    if (st.ok()) {
      EXPECT_FALSE(fired);
      exhausted = true;
    } else {
      ASSERT_TRUE(fired) << "non-injected failure: " << st.ToString();
    }

    // Recover and resume at a rotating shard count: the bytes on disk
    // must be shard-agnostic, so any recovery configuration converges.
    size_t recover_shards = 1 + n % 4;  // 1, 2, 3, 4, 1, ...
    auto recovered = DurableViewManager::Open(PivotCatalog(),
                                              Definitions(PivotCatalog()),
                                              Options(dir, 2));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ivm::ShardingOptions resume;
    resume.num_shards = recover_shards;
    (*recovered)->manager()->set_exec_context(ctx);
    (*recovered)->manager()->set_sharding(resume);
    uint64_t seq = (*recovered)->manager()->epoch_seq();
    ASSERT_LE(seq, batches.size());
    for (size_t i = static_cast<size_t>(seq); i < batches.size(); ++i) {
      ASSERT_OK((*recovered)->ApplyUpdate(batches[i]));
    }
    ASSERT_OK((*recovered)->manager()->Audit());
    EXPECT_EQ(Fingerprint(*(*recovered)->manager()), expected)
        << "recovered at " << recover_shards << " shards";
  }
}

// Crash *during recovery*: every fault point inside Open itself (snapshot
// load, replay, the re-covering checkpoint, the WAL reset) is a kill
// site; a second, clean Open over the same directory must converge to the
// same state — recovery is idempotent.
TEST(RecoveryTest, CrashDuringRecoverySweepConverges) {
  std::vector<SourceDeltas> batches =
      WorkloadBatches(PivotCatalog(), 555, 5);
  std::string expected = UndurableFingerprint(batches);

  // A directory mid-life: checkpoint at seq 0, the whole workload in the
  // WAL — the recovery-heaviest shape.
  std::string base = FreshDir("recovery_base");
  {
    auto dvm = DurableViewManager::Open(PivotCatalog(),
                                        Definitions(PivotCatalog()),
                                        Options(base, 0));
    ASSERT_TRUE(dvm.ok()) << dvm.status().ToString();
    for (const SourceDeltas& batch : batches) {
      ASSERT_OK((*dvm)->ApplyUpdate(batch));
    }
    EXPECT_EQ(Fingerprint(*(*dvm)->manager()), expected);
  }

  FaultInjector& injector = FaultInjector::Global();
  for (size_t n = 1;; ++n) {
    ASSERT_LT(n, 200u) << "sweep did not terminate";
    SCOPED_TRACE("fault point n=" + std::to_string(n));
    std::string dir = FreshDir("recovery_crash_" + std::to_string(n));
    std::filesystem::copy(base, dir,
                          std::filesystem::copy_options::recursive);

    injector.Arm(n);
    auto first = DurableViewManager::Open(PivotCatalog(),
                                          Definitions(PivotCatalog()),
                                          Options(dir, 0));
    bool fired = injector.fired();
    injector.Disarm();
    if (first.ok()) {
      EXPECT_FALSE(fired);
      EXPECT_EQ(Fingerprint(*(*first)->manager()), expected);
      break;  // n passed recovery's last fault point
    }
    ASSERT_TRUE(fired) << "non-injected failure: "
                       << first.status().ToString();
    first = Status::Internal("discarded");  // drop the half-open manager

    auto second = DurableViewManager::Open(PivotCatalog(),
                                           Definitions(PivotCatalog()),
                                           Options(dir, 0));
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    ASSERT_OK((*second)->manager()->Audit());
    EXPECT_EQ((*second)->manager()->epoch_seq(), batches.size());
    EXPECT_EQ(Fingerprint(*(*second)->manager()), expected);
  }
}

// Compacted replay must land on the same state as sequential replay while
// propagating no more rows (strictly fewer whenever the workload has
// cross-batch churn — the reason recovery costs net churn, not history).
TEST(RecoveryTest, CompactedReplayMatchesSequentialWithFewerRows) {
  std::vector<SourceDeltas> batches =
      WorkloadBatches(PivotCatalog(), 321, 8);
  std::string base = FreshDir("replay_base");
  {
    auto dvm = DurableViewManager::Open(PivotCatalog(),
                                        Definitions(PivotCatalog()),
                                        Options(base, 0));
    ASSERT_TRUE(dvm.ok()) << dvm.status().ToString();
    for (const SourceDeltas& batch : batches) {
      ASSERT_OK((*dvm)->ApplyUpdate(batch));
    }
  }
  std::string compacted_dir = FreshDir("replay_compacted");
  std::string sequential_dir = FreshDir("replay_sequential");
  std::filesystem::copy(base, compacted_dir,
                        std::filesystem::copy_options::recursive);
  std::filesystem::copy(base, sequential_dir,
                        std::filesystem::copy_options::recursive);

  auto compacted = DurableViewManager::Open(
      PivotCatalog(), Definitions(PivotCatalog()),
      Options(compacted_dir, 0, ReplayMode::kCompacted));
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  auto sequential = DurableViewManager::Open(
      PivotCatalog(), Definitions(PivotCatalog()),
      Options(sequential_dir, 0, ReplayMode::kSequential));
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

  EXPECT_EQ(Fingerprint(*(*compacted)->manager()),
            Fingerprint(*(*sequential)->manager()));
  ASSERT_OK((*compacted)->manager()->Audit());

  const RecoveryReport& creport = (*compacted)->recovery_report();
  const RecoveryReport& sreport = (*sequential)->recovery_report();
  EXPECT_EQ(creport.replay_rows_raw, sreport.replay_rows_raw);
  EXPECT_EQ(sreport.replay_rows_applied, sreport.replay_rows_raw);
  EXPECT_LT(creport.replay_rows_applied, creport.replay_rows_raw)
      << "workload produced no cross-batch cancellation to fold";
  EXPECT_EQ(creport.replay_epochs, 1u);
  EXPECT_EQ(sreport.replay_epochs, batches.size());
}

}  // namespace
}  // namespace gpivot::storage
