// Observability determinism: a maintenance epoch over the three experiment
// views must record byte-identical counter values and an identical span
// tree no matter how many threads execute it. Operator/IVM counters travel
// through ExecContext-carried registries (pool-level noise goes to the
// global registry only), and cross-thread spans carry explicit parent and
// order keys — this test is the contract's enforcement.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "ivm/batcher.h"
#include "ivm/view_manager.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/query.h"
#include "serve/snapshot.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/views.h"
#include "util/thread_pool.h"

namespace gpivot {
namespace {

using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;

tpch::Config SmallConfig() {
  tpch::Config config;
  config.scale_factor = 0.001;
  config.seed = 11;
  return config;
}

ViewManager MakeThreeViewManager(const tpch::Config& config,
                                 const ExecContext& ctx) {
  Catalog catalog = tpch::MakeCatalog(tpch::Generate(config)).value();
  PlanPtr v1 = tpch::View1(catalog, config.max_line_numbers).value();
  PlanPtr v2 = tpch::View2(catalog, config.max_line_numbers, 30000.0).value();
  PlanPtr v3 =
      tpch::View3(catalog, config.first_year, config.num_years).value();
  ViewManager manager(std::move(catalog));
  manager.set_exec_context(ctx);
  EXPECT_TRUE(manager.DefineView("v1", v1, RefreshStrategy::kUpdate).ok());
  EXPECT_TRUE(
      manager.DefineView("v2", v2, RefreshStrategy::kCombinedSelect).ok());
  EXPECT_TRUE(
      manager.DefineView("v3", v3, RefreshStrategy::kCombinedGroupBy).ok());
  return manager;
}

// One observed epoch: counters recorded and spans traced while applying a
// 5% mixed-insert batch to a fresh three-view manager at `threads`.
struct ObservedEpoch {
  std::map<std::string, uint64_t> counters;
  std::string span_tree;
};

ObservedEpoch RunObservedEpoch(size_t threads,
                               size_t vector_chunk = kVectorChunkAuto) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  obs::Tracer tracer;
  tracer.set_enabled(true);
  ExecContext ctx;
  ctx.num_threads = threads;
  ctx.min_parallel_rows = 1;  // force parallel paths on the tiny tables
  ctx.vector_chunk_size = vector_chunk;
  ctx.metrics = &registry;
  ctx.tracer = &tracer;
  tpch::Config config = SmallConfig();
  ViewManager manager = MakeThreeViewManager(config, ctx);
  SourceDeltas deltas =
      tpch::MakeLineitemInsertsMixed(manager.catalog(), config, 0.05, 42)
          .value();
  // Only the epoch itself is under observation; view definition above
  // records too, so start clean.
  registry.Reset();
  tracer.Clear();
  EXPECT_TRUE(manager.ApplyUpdate(deltas).ok());
  return ObservedEpoch{registry.Snapshot().counters, tracer.ToSpanTree()};
}

TEST(ObsDeterminismTest, EpochCountersIdenticalAcrossThreadCounts) {
  ObservedEpoch sequential = RunObservedEpoch(1);
  ASSERT_FALSE(sequential.counters.empty());
  // The epoch must have exercised every instrumented layer.
  EXPECT_EQ(sequential.counters.count("ivm.propagate.calls"), 1u);
  EXPECT_EQ(sequential.counters.count("ivm.merge.updates"), 1u);
  EXPECT_EQ(sequential.counters.count("ivm.advance.tables"), 1u);
  ObservedEpoch parallel = RunObservedEpoch(4);
  EXPECT_EQ(sequential.counters, parallel.counters)
      << "operator counters leaked scheduling dependence";
}

TEST(ObsDeterminismTest, EpochArtifactsIdenticalAcrossVectorChunkSizes) {
  // The vectorized batch executor must be invisible to every observable:
  // chunk width 1 vs 1024 vs the row shim (0), at both thread counts.
  ObservedEpoch reference = RunObservedEpoch(1, 1024);
  ASSERT_FALSE(reference.counters.empty());
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (size_t chunk : {size_t{0}, size_t{1}, size_t{1024}}) {
      if (threads == 1 && chunk == 1024) continue;  // the reference itself
      ObservedEpoch other = RunObservedEpoch(threads, chunk);
      EXPECT_EQ(reference.counters, other.counters)
          << "counters depend on chunk size (threads=" << threads
          << ", chunk=" << chunk << ")";
      EXPECT_EQ(reference.span_tree, other.span_tree)
          << "span tree depends on chunk size (threads=" << threads
          << ", chunk=" << chunk << ")";
    }
  }
}

TEST(ObsDeterminismTest, EpochSpanTreeIdenticalAcrossThreadCounts) {
  ObservedEpoch sequential = RunObservedEpoch(1);
  ASSERT_FALSE(sequential.span_tree.empty());
  // Epoch → stage → per-view → operator nesting, with views in definition
  // order regardless of which worker staged them.
  EXPECT_NE(sequential.span_tree.find("epoch\n"), std::string::npos)
      << sequential.span_tree;
  EXPECT_NE(sequential.span_tree.find("  stage\n"), std::string::npos);
  EXPECT_NE(sequential.span_tree.find("    stage:v1\n"), std::string::npos);
  EXPECT_NE(sequential.span_tree.find("commit:v1"), std::string::npos);
  EXPECT_NE(sequential.span_tree.find("  advance\n"), std::string::npos);
  EXPECT_LT(sequential.span_tree.find("stage:v1"),
            sequential.span_tree.find("stage:v2"));
  EXPECT_LT(sequential.span_tree.find("stage:v2"),
            sequential.span_tree.find("stage:v3"));
  ObservedEpoch parallel = RunObservedEpoch(4);
  EXPECT_EQ(sequential.span_tree, parallel.span_tree)
      << "span structure depends on the schedule";
}

// One epoch's cost-accounting artifacts at `threads`: every view's EXPLAIN
// ANALYZE rendering plus the raw bytes of the epoch event log.
struct CostArtifacts {
  std::string explain_text;  // v1+v2+v3 ToText() concatenated
  std::string explain_json;  // v1+v2+v3 ToJsonLine() concatenated
  std::string event_log_bytes;
};

CostArtifacts RunCostEpoch(size_t threads) {
  std::string log_path = ::testing::TempDir() + "/gpivot_det_" +
                         std::to_string(threads) + ".jsonl";
  std::remove(log_path.c_str());
  obs::EventLog log(log_path);
  EXPECT_TRUE(log.ok()) << log.error();
  ExecContext ctx;
  ctx.num_threads = threads;
  ctx.min_parallel_rows = 1;
  tpch::Config config = SmallConfig();
  ViewManager manager = MakeThreeViewManager(config, ctx);
  manager.set_event_log(&log);
  SourceDeltas deltas =
      tpch::MakeLineitemInsertsMixed(manager.catalog(), config, 0.05, 42)
          .value();
  EXPECT_TRUE(manager.ApplyUpdate(deltas).ok());
  CostArtifacts artifacts;
  for (const char* name : {"v1", "v2", "v3"}) {
    CostReport report = manager.ExplainAnalyze(name).value();
    artifacts.explain_text += report.ToText();
    artifacts.explain_json += report.ToJsonLine() + "\n";
  }
  std::ifstream in(log_path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  artifacts.event_log_bytes = buffer.str();
  std::remove(log_path.c_str());
  return artifacts;
}

TEST(ObsDeterminismTest, CostReportsAndEpochLogIdenticalAcrossThreadCounts) {
  CostArtifacts sequential = RunCostEpoch(1);
  // The reports carry real content: per-node actuals and an epoch record.
  ASSERT_NE(sequential.explain_text.find("SCAN lineitem"), std::string::npos)
      << sequential.explain_text;
  ASSERT_NE(sequential.event_log_bytes.find("\"outcome\": \"committed\""),
            std::string::npos)
      << sequential.event_log_bytes;
  // No timings anywhere: stats are pure functions of the work, so both
  // renderings and the JSONL file are byte-identical at any thread count.
  CostArtifacts parallel = RunCostEpoch(4);
  EXPECT_EQ(sequential.explain_text, parallel.explain_text);
  EXPECT_EQ(sequential.explain_json, parallel.explain_json);
  EXPECT_EQ(sequential.event_log_bytes, parallel.event_log_bytes);
}

// A batched-ingest epoch's artifacts at `threads`: the flushed views' rows,
// the counter snapshot (ivm.batcher.* included), every view's EXPLAIN
// ANALYZE rendering, and the raw epoch event-log bytes.
struct BatcherArtifacts {
  std::map<std::string, std::vector<Row>> view_rows;
  std::map<std::string, uint64_t> counters;
  std::string explain_text;
  std::string explain_json;
  std::string event_log_bytes;
};

// Churn batches over one new-key workload (batch b inserts chunk b and
// retracts chunk b-1), as in bench_micro_batch: most rows cancel in the
// batcher, so the flush exercises compaction before the parallel staging
// whose determinism is under test.
std::vector<SourceDeltas> ChurnBatches(const ViewManager& manager,
                                       const tpch::Config& config,
                                       size_t num_batches) {
  SourceDeltas workload =
      tpch::MakeLineitemInsertsNewKeys(manager.catalog(), config, 0.06, 42)
          .value();
  const Table& inserts = workload.at("lineitem").inserts;
  const std::vector<Row>& rows = inserts.rows();
  size_t n = rows.size();
  std::vector<SourceDeltas> batches;
  for (size_t b = 0; b < num_batches; ++b) {
    ivm::Delta delta = ivm::Delta::Empty(inserts.schema());
    for (size_t i = b * n / num_batches; i < (b + 1) * n / num_batches; ++i) {
      delta.inserts.AddRow(rows[i]);
    }
    if (b > 0) {
      for (size_t i = (b - 1) * n / num_batches; i < b * n / num_batches;
           ++i) {
        delta.deletes.AddRow(rows[i]);
      }
    }
    SourceDeltas deltas;
    deltas.emplace("lineitem", std::move(delta));
    batches.push_back(std::move(deltas));
  }
  return batches;
}

BatcherArtifacts RunBatchedEpoch(size_t threads) {
  std::string log_path = ::testing::TempDir() + "/gpivot_batch_det_" +
                         std::to_string(threads) + ".jsonl";
  std::remove(log_path.c_str());
  obs::EventLog log(log_path);
  EXPECT_TRUE(log.ok()) << log.error();
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  ExecContext ctx;
  ctx.num_threads = threads;
  ctx.min_parallel_rows = 1;
  ctx.metrics = &registry;
  tpch::Config config = SmallConfig();
  ViewManager manager = MakeThreeViewManager(config, ctx);
  manager.set_event_log(&log);
  std::vector<SourceDeltas> batches = ChurnBatches(manager, config, 4);
  registry.Reset();
  ivm::DeltaBatcher batcher(&manager);
  for (const SourceDeltas& batch : batches) {
    EXPECT_TRUE(batcher.Ingest(batch).ok());
  }
  EXPECT_TRUE(batcher.Flush().ok());
  BatcherArtifacts artifacts;
  artifacts.counters = registry.Snapshot().counters;
  for (const char* name : {"v1", "v2", "v3"}) {
    artifacts.view_rows[name] = manager.GetView(name).value()->table().rows();
    CostReport report = manager.ExplainAnalyze(name).value();
    artifacts.explain_text += report.ToText();
    artifacts.explain_json += report.ToJsonLine() + "\n";
  }
  std::ifstream in(log_path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  artifacts.event_log_bytes = buffer.str();
  std::remove(log_path.c_str());
  return artifacts;
}

TEST(ObsDeterminismTest, BatcherFlushArtifactsIdenticalAcrossThreadCounts) {
  BatcherArtifacts sequential = RunBatchedEpoch(1);
  // The flush really went through the batcher and landed one epoch.
  ASSERT_GT(sequential.counters["ivm.batcher.rows_cancelled"], 0u);
  ASSERT_EQ(sequential.counters["ivm.batcher.flushes"], 1u);
  ASSERT_EQ(sequential.counters["ivm.advance.tables"], 1u);
  ASSERT_NE(sequential.event_log_bytes.find("\"entry\": \"batched_apply_update\""),
            std::string::npos)
      << sequential.event_log_bytes;
  BatcherArtifacts parallel = RunBatchedEpoch(4);
  EXPECT_EQ(sequential.view_rows, parallel.view_rows)
      << "flushed view rows depend on the schedule";
  EXPECT_EQ(sequential.counters, parallel.counters)
      << "batcher/epoch counters leaked scheduling dependence";
  EXPECT_EQ(sequential.explain_text, parallel.explain_text);
  EXPECT_EQ(sequential.explain_json, parallel.explain_json);
  EXPECT_EQ(sequential.event_log_bytes, parallel.event_log_bytes);
}

// A serving scenario's observable artifacts at (threads, vector_chunk):
// epochs churn the views through the batcher while a registered reader runs
// the same fixed query script between epochs. Everything below must be a
// pure function of the workload — reader-side query results and counters,
// store-side serve.* counters, and the epoch JSONL including the serving
// layer's install/retire lines.
struct ServingArtifacts {
  std::map<std::string, std::vector<Row>> query_rows;
  std::map<std::string, uint64_t> store_counters;
  std::map<std::string, uint64_t> reader_counters;
  std::string event_log_bytes;
};

ServingArtifacts RunServingScenario(size_t threads,
                                    size_t vector_chunk = kVectorChunkAuto) {
  std::string log_path = ::testing::TempDir() + "/gpivot_serve_det_" +
                         std::to_string(threads) + "_" +
                         std::to_string(vector_chunk) + ".jsonl";
  std::remove(log_path.c_str());
  obs::EventLog log(log_path);
  EXPECT_TRUE(log.ok()) << log.error();
  ExecContext maintain_ctx;
  maintain_ctx.num_threads = threads;
  maintain_ctx.min_parallel_rows = 1;
  maintain_ctx.vector_chunk_size = vector_chunk;
  tpch::Config config = SmallConfig();
  ViewManager manager = MakeThreeViewManager(config, maintain_ctx);
  manager.set_event_log(&log);

  obs::MetricsRegistry store_registry;
  store_registry.set_enabled(true);
  serve::SnapshotStore store(&manager, serve::ServeOptions{}, &store_registry,
                             &log);
  EXPECT_TRUE(store.Attach().ok());
  serve::ReaderHandle* handle = store.RegisterReader().value();

  obs::MetricsRegistry reader_registry;
  reader_registry.set_enabled(true);
  ExecContext reader_ctx;
  reader_ctx.metrics = &reader_registry;
  reader_ctx.vector_chunk_size = vector_chunk;
  serve::QueryService service(&store, reader_ctx);

  // Fixed query script: one snapshot-tagged lookup, scan, and top-k per
  // view version. The lookup key is the first v1 row's key at epoch 0 —
  // new-key churn never touches initial-view keys, so it stays present.
  const ivm::MaterializedView* v1 = manager.GetView("v1").value();
  EXPECT_GT(v1->num_rows(), 0u);
  Row lookup_key = ProjectRow(v1->RowAt(0), v1->key_indices());
  ExprPtr window = Gt(Col("orderkey"), Lit(int64_t{100}));

  ServingArtifacts artifacts;
  auto run_queries = [&](const std::string& tag) {
    std::optional<Row> hit =
        service.PointLookup("v1", lookup_key, handle).value();
    EXPECT_TRUE(hit.has_value());
    artifacts.query_rows["lookup:" + tag] = {*hit};
    Table scanned = service.Scan("v1", window, handle).value();
    artifacts.query_rows["scan:" + tag] = scanned.rows();
    Table top = service.TopK("v1", "1**extendedprice", 5, handle).value();
    artifacts.query_rows["topk:" + tag] = top.rows();
  };

  run_queries("epoch0");
  std::vector<SourceDeltas> batches = ChurnBatches(manager, config, 4);
  ivm::DeltaBatcher batcher(&manager);
  for (const SourceDeltas& batch : batches) {
    EXPECT_TRUE(batcher.Ingest(batch).ok());
  }
  EXPECT_TRUE(batcher.Flush().ok());
  run_queries("epoch1");
  SourceDeltas mixed =
      tpch::MakeLineitemInsertsMixed(manager.catalog(), config, 0.05, 42)
          .value();
  EXPECT_TRUE(manager.ApplyUpdate(mixed).ok());
  run_queries("epoch2");

  store.UnregisterReader(handle);
  artifacts.store_counters = store_registry.Snapshot().counters;
  artifacts.reader_counters = reader_registry.Snapshot().counters;
  std::ifstream in(log_path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  artifacts.event_log_bytes = buffer.str();
  std::remove(log_path.c_str());
  return artifacts;
}

TEST(ObsDeterminismTest, ServingArtifactsIdenticalAcrossThreadsAndChunks) {
  ServingArtifacts reference = RunServingScenario(1, 1024);
  // The scenario exercised the whole serving surface…
  EXPECT_EQ(reference.store_counters.at("serve.snapshot.installs"), 3u);
  // Two post-attach epochs retire one superseded version per view.
  EXPECT_EQ(reference.store_counters.at("serve.retire.count"), 6u);
  EXPECT_EQ(reference.reader_counters.at("serve.query.lookup"), 3u);
  EXPECT_EQ(reference.reader_counters.at("serve.query.scan"), 3u);
  EXPECT_EQ(reference.reader_counters.at("serve.query.topk"), 3u);
  EXPECT_EQ(reference.store_counters.count("serve.read.locks"), 0u)
      << "registered reader fell off the lock-free path";
  // …and the epoch log now interleaves serving records with epoch records.
  ASSERT_NE(reference.event_log_bytes.find("\"serve\": \"install\""),
            std::string::npos)
      << reference.event_log_bytes;
  ASSERT_NE(reference.event_log_bytes.find("\"serve\": \"retire\""),
            std::string::npos);
  ASSERT_NE(reference.event_log_bytes.find("\"outcome\": \"committed\""),
            std::string::npos);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (size_t chunk : {size_t{0}, size_t{1024}}) {
      if (threads == 1 && chunk == 1024) continue;  // the reference itself
      ServingArtifacts other = RunServingScenario(threads, chunk);
      EXPECT_EQ(reference.query_rows, other.query_rows)
          << "query results depend on the schedule (threads=" << threads
          << ", chunk=" << chunk << ")";
      EXPECT_EQ(reference.store_counters, other.store_counters);
      EXPECT_EQ(reference.reader_counters, other.reader_counters);
      EXPECT_EQ(reference.event_log_bytes, other.event_log_bytes)
          << "serving event-log bytes depend on the schedule (threads="
          << threads << ", chunk=" << chunk << ")";
    }
  }
}

TEST(ObsDeterminismTest, UnobservedEpochMatchesObservedResults) {
  // Observability must be read-only: the refreshed views are identical
  // whether or not metrics/tracing are attached.
  tpch::Config config = SmallConfig();
  ViewManager plain = MakeThreeViewManager(config, ExecContext{4, 1});
  SourceDeltas deltas =
      tpch::MakeLineitemInsertsMixed(plain.catalog(), config, 0.05, 42)
          .value();
  ASSERT_OK(plain.ApplyUpdate(deltas));

  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  obs::Tracer tracer;
  tracer.set_enabled(true);
  ExecContext ctx{4, 1};
  ctx.metrics = &registry;
  ctx.tracer = &tracer;
  ViewManager observed = MakeThreeViewManager(config, ctx);
  ASSERT_OK(observed.ApplyUpdate(deltas));

  for (const char* name : {"v1", "v2", "v3"}) {
    EXPECT_EQ(plain.GetView(name).value()->table().rows(),
              observed.GetView(name).value()->table().rows())
        << "view '" << name << "' differs under observation";
  }
  ASSERT_OK(observed.Audit());
}

}  // namespace
}  // namespace gpivot
