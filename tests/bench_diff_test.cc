// The bench-regression gate (tools/bench_compare): exact on deterministic
// facts, tolerant on wall time, and honest exit codes so CI can trust 0.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "tools/bench_compare.h"

namespace gpivot::tools {
namespace {

namespace fs = std::filesystem;

class BenchDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("bench_diff_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "base");
    fs::create_directories(root_ / "cand");
  }
  void TearDown() override { fs::remove_all(root_); }

  struct FileSpec {
    int num_threads = 1;
    int num_shards = -1;  // < 0: omit the field (file predating sharding)
    double wall_ms = 10.0;
    int view_rows = 500;
    std::string extra_row_fields;  // appended inside the result object
  };

  // One-figure BENCH document with a single FullRecompute@1% row.
  static std::string Doc(const FileSpec& spec) {
    char shards[64] = "";
    if (spec.num_shards >= 0) {
      std::snprintf(shards, sizeof(shards), " \"num_shards\": %d,\n",
                    spec.num_shards);
    }
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\"figure\": \"Fig/Test\", \"scale_factor\": 0.0100, \"seed\": 7,\n"
        " \"num_threads\": %d, \"hardware_threads\": 8,\n"
        "%s"
        " \"results\": [{\"strategy\": \"FullRecompute\", "
        "\"delta_fraction\": 0.0100, \"wall_ms\": %.4f, "
        "\"wall_ms_median\": %.4f, \"reps\": 3, \"view_rows\": %d, "
        "\"delta_rows\": 50%s}]}\n",
        spec.num_threads, shards, spec.wall_ms, spec.wall_ms, spec.view_rows,
        spec.extra_row_fields.c_str());
    return buf;
  }

  void WriteSide(const char* side, const std::string& content,
                 const char* name = "BENCH_Fig_Test.json") {
    std::ofstream(root_ / side / name) << content;
  }

  int Diff(const BenchDiffOptions& options, BenchDiffReport* report) {
    return DiffBenchDirs((root_ / "base").string(), (root_ / "cand").string(),
                         options, report);
  }

  fs::path root_;
};

TEST_F(BenchDiffTest, IdenticalDirsPass) {
  WriteSide("base", Doc({}));
  WriteSide("cand", Doc({}));
  BenchDiffReport report;
  EXPECT_EQ(Diff({}, &report), kDiffOk) << report.ToString();
  EXPECT_TRUE(report.errors.empty());
}

TEST_F(BenchDiffTest, ViewRowChangeFails) {
  WriteSide("base", Doc({.view_rows = 500}));
  WriteSide("cand", Doc({.view_rows = 501}));
  BenchDiffReport report;
  EXPECT_EQ(Diff({}, &report), kDiffFailed);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("view_rows"), std::string::npos)
      << report.errors[0];
}

TEST_F(BenchDiffTest, WallRegressionBeyondToleranceFails) {
  WriteSide("base", Doc({.wall_ms = 10.0}));
  WriteSide("cand", Doc({.wall_ms = 100.0}));
  BenchDiffReport report;
  EXPECT_EQ(Diff({}, &report), kDiffFailed);
  EXPECT_NE(report.ToString().find("wall time regressed"), std::string::npos);

  // Within a generous tolerance the same pair passes.
  BenchDiffReport lenient_report;
  BenchDiffOptions lenient;
  lenient.time_tolerance = 25.0;
  EXPECT_EQ(Diff(lenient, &lenient_report), kDiffOk)
      << lenient_report.ToString();
  // And --shape-only never looks at time.
  BenchDiffReport shape_report;
  BenchDiffOptions shape;
  shape.shape_only = true;
  EXPECT_EQ(Diff(shape, &shape_report), kDiffOk);
}

TEST_F(BenchDiffTest, ThreadCountMismatchSkipsWallGate) {
  WriteSide("base", Doc({.num_threads = 1, .wall_ms = 10.0}));
  WriteSide("cand", Doc({.num_threads = 4, .wall_ms = 100.0}));
  BenchDiffReport report;
  EXPECT_EQ(Diff({}, &report), kDiffOk) << report.ToString();
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes[0].find("num_threads differ"), std::string::npos);
}

TEST_F(BenchDiffTest, ShardCountMismatchSkipsWallGate) {
  // Shard count is a timing-only knob like thread count: rows and counters
  // still gate, but wall time across different GPIVOT_SHARDS would flag
  // the speedup sharding exists to produce.
  WriteSide("base", Doc({.num_shards = 1, .wall_ms = 10.0}));
  WriteSide("cand", Doc({.num_shards = 4, .wall_ms = 100.0}));
  BenchDiffReport report;
  EXPECT_EQ(Diff({}, &report), kDiffOk) << report.ToString();
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes[0].find("num_shards differ"), std::string::npos);

  // Deterministic facts still gate under the shard mismatch.
  WriteSide("cand", Doc({.num_shards = 4, .view_rows = 501}));
  BenchDiffReport rows_report;
  EXPECT_EQ(Diff({}, &rows_report), kDiffFailed);
  EXPECT_NE(rows_report.ToString().find("view_rows"), std::string::npos);
}

TEST_F(BenchDiffTest, FilesWithoutShardFieldStayWallComparable) {
  // Legacy documents (no num_shards on either side) read as -1 vs -1:
  // equal, so the wall gate still applies and a real regression fails.
  WriteSide("base", Doc({.wall_ms = 10.0}));
  WriteSide("cand", Doc({.wall_ms = 100.0}));
  BenchDiffReport report;
  EXPECT_EQ(Diff({}, &report), kDiffFailed);
  EXPECT_NE(report.ToString().find("wall time regressed"), std::string::npos);

  // One side gaining the field (candidate built after the sharding change,
  // baseline from before) counts as a mismatch: skip, don't fail.
  WriteSide("cand", Doc({.num_shards = 1, .wall_ms = 100.0}));
  BenchDiffReport mixed;
  EXPECT_EQ(Diff({}, &mixed), kDiffOk) << mixed.ToString();
  ASSERT_FALSE(mixed.notes.empty());
  EXPECT_NE(mixed.notes[0].find("num_shards differ"), std::string::npos);
}

TEST_F(BenchDiffTest, CounterChangeFailsButIgnoredPrefixPasses) {
  FileSpec base;
  base.extra_row_fields =
      ", \"metrics\": {\"counters\": {\"exec.join.calls\": 4, "
      "\"thread_pool.tasks\": 9}}";
  FileSpec cand;
  cand.extra_row_fields =
      ", \"metrics\": {\"counters\": {\"exec.join.calls\": 4, "
      "\"thread_pool.tasks\": 77}}";
  WriteSide("base", Doc(base));
  WriteSide("cand", Doc(cand));
  BenchDiffReport report;
  EXPECT_EQ(Diff({}, &report), kDiffOk) << report.ToString();

  cand.extra_row_fields =
      ", \"metrics\": {\"counters\": {\"exec.join.calls\": 5, "
      "\"thread_pool.tasks\": 9}}";
  WriteSide("cand", Doc(cand));
  BenchDiffReport changed;
  EXPECT_EQ(Diff({}, &changed), kDiffFailed);
  EXPECT_NE(changed.ToString().find("exec.join.calls"), std::string::npos);
}

TEST_F(BenchDiffTest, MissingFigureFailsUnlessAllowed) {
  WriteSide("base", Doc({}));
  BenchDiffReport report;
  EXPECT_EQ(Diff({}, &report), kDiffFailed);
  BenchDiffOptions allow;
  allow.require_all = false;
  BenchDiffReport allowed;
  EXPECT_EQ(Diff(allow, &allowed), kDiffOk) << allowed.ToString();
}

TEST_F(BenchDiffTest, FigureIdentityMismatchFails) {
  WriteSide("base", Doc({}));
  std::string other = Doc({});
  auto at = other.find("\"seed\": 7");
  other.replace(at, 9, "\"seed\": 8");
  WriteSide("cand", other);
  BenchDiffReport report;
  EXPECT_EQ(Diff({}, &report), kDiffFailed);
  EXPECT_NE(report.ToString().find("seed mismatch"), std::string::npos);
}

TEST_F(BenchDiffTest, UnparsableInputIsUnusableNotPass) {
  WriteSide("base", Doc({}));
  WriteSide("cand", "{\"figure\": ");
  BenchDiffReport report;
  EXPECT_EQ(Diff({}, &report), kDiffUnusable);
  BenchDiffReport missing_report;
  EXPECT_EQ(DiffBenchDirs((root_ / "nowhere").string(),
                          (root_ / "cand").string(), {}, &missing_report),
            kDiffUnusable);
}

}  // namespace
}  // namespace gpivot::tools
