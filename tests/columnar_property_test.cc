// End-to-end row-shim vs vectorized equivalence: random delta sequences
// driven through the three experiment views must leave byte-identical
// artifacts whichever execution path ran them, at any thread count. The
// artifacts cover everything the system exposes — the canonical serialized
// bytes of every (sorted) view, the raw view rows, EXPLAIN ANALYZE JSON,
// the epoch event-log JSONL, and the full counter snapshot — so a fast path
// that drifts in contents, order, plan shape, or accounting fails here.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ivm/view_manager.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "storage/serialize.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/views.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace gpivot {
namespace {

using ivm::RefreshStrategy;
using ivm::SourceDeltas;
using ivm::ViewManager;

struct PipelineArtifacts {
  std::map<std::string, std::string> sorted_view_bytes;
  std::map<std::string, std::vector<Row>> view_rows;
  std::string explain_json;
  std::string event_log_bytes;
  std::map<std::string, uint64_t> counters;
};

// One full run: define the three views, apply a `workload_seed`-determined
// sequence of insert/delete/mixed epochs, and collect every observable
// artifact. `chunk` = 0 is the row shim; anything else the vectorized path.
PipelineArtifacts RunPipeline(size_t threads, size_t chunk,
                              uint64_t workload_seed) {
  std::string log_path = ::testing::TempDir() + "/gpivot_col_prop_" +
                         std::to_string(threads) + "_" +
                         std::to_string(chunk) + "_" +
                         std::to_string(workload_seed) + ".jsonl";
  std::remove(log_path.c_str());
  obs::EventLog log(log_path);
  EXPECT_TRUE(log.ok()) << log.error();
  obs::MetricsRegistry registry;
  registry.set_enabled(true);

  ExecContext ctx;
  ctx.num_threads = threads;
  ctx.min_parallel_rows = 1;  // force parallel paths on the tiny tables
  ctx.vector_chunk_size = chunk;
  ctx.metrics = &registry;

  tpch::Config config;
  config.scale_factor = 0.001;
  config.seed = 11;
  Catalog catalog = tpch::MakeCatalog(tpch::Generate(config)).value();
  PlanPtr v1 = tpch::View1(catalog, config.max_line_numbers).value();
  PlanPtr v2 = tpch::View2(catalog, config.max_line_numbers, 30000.0).value();
  PlanPtr v3 =
      tpch::View3(catalog, config.first_year, config.num_years).value();
  ViewManager manager(std::move(catalog));
  manager.set_exec_context(ctx);
  EXPECT_TRUE(manager.DefineView("v1", v1, RefreshStrategy::kUpdate).ok());
  EXPECT_TRUE(
      manager.DefineView("v2", v2, RefreshStrategy::kCombinedSelect).ok());
  EXPECT_TRUE(
      manager.DefineView("v3", v3, RefreshStrategy::kCombinedGroupBy).ok());
  manager.set_event_log(&log);
  registry.Reset();

  // Random epoch sequence. The draws depend only on workload_seed, so every
  // (threads, chunk) configuration replays the same deltas.
  Rng rng(workload_seed * 7919 + 3);
  for (int epoch = 0; epoch < 4; ++epoch) {
    uint64_t seed = static_cast<uint64_t>(rng.Int(1, 1 << 20));
    SourceDeltas deltas;
    switch (rng.Int(0, 2)) {
      case 0:
        deltas = tpch::MakeLineitemInsertsNewKeys(manager.catalog(), config,
                                                  0.03, seed)
                     .value();
        break;
      case 1:
        deltas = tpch::MakeLineitemDeletes(manager.catalog(), 0.03, seed)
                     .value();
        break;
      default:
        deltas = tpch::MakeLineitemInsertsMixed(manager.catalog(), config,
                                                0.03, seed)
                     .value();
        break;
    }
    EXPECT_TRUE(manager.ApplyUpdate(deltas).ok());
  }

  PipelineArtifacts artifacts;
  artifacts.counters = registry.Snapshot().counters;
  for (const char* name : {"v1", "v2", "v3"}) {
    const Table& view = manager.GetView(name).value()->table();
    artifacts.view_rows[name] = view.rows();
    artifacts.sorted_view_bytes[name] =
        storage::EncodeTableToString(view.Sorted());
    CostReport report = manager.ExplainAnalyze(name).value();
    artifacts.explain_json += report.ToJsonLine() + "\n";
  }
  std::ifstream in(log_path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  artifacts.event_log_bytes = buffer.str();
  std::remove(log_path.c_str());
  return artifacts;
}

void ExpectIdenticalArtifacts(const PipelineArtifacts& expected,
                              const PipelineArtifacts& actual,
                              const std::string& label) {
  EXPECT_EQ(expected.sorted_view_bytes, actual.sorted_view_bytes)
      << label << ": canonical view bytes diverged";
  EXPECT_EQ(expected.view_rows, actual.view_rows)
      << label << ": view rows (or their order) diverged";
  EXPECT_EQ(expected.explain_json, actual.explain_json)
      << label << ": EXPLAIN ANALYZE (plan shape / counters) diverged";
  EXPECT_EQ(expected.event_log_bytes, actual.event_log_bytes)
      << label << ": epoch JSONL diverged";
  EXPECT_EQ(expected.counters, actual.counters)
      << label << ": metrics counters diverged";
}

class ColumnarPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ColumnarPropertyTest, RowShimAndVectorizedPipelinesByteIdentical) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  // Reference: row shim, sequential.
  PipelineArtifacts reference = RunPipeline(1, 0, seed);
  ASSERT_FALSE(reference.sorted_view_bytes.empty());
  ASSERT_GT(reference.counters["ivm.propagate.calls"], 0u);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (size_t chunk : {size_t{0}, size_t{1024}}) {
      if (threads == 1 && chunk == 0) continue;  // the reference itself
      PipelineArtifacts candidate = RunPipeline(threads, chunk, seed);
      ExpectIdenticalArtifacts(
          reference, candidate,
          "threads=" + std::to_string(threads) +
              " chunk=" + std::to_string(chunk));
    }
  }
}

TEST_P(ColumnarPropertyTest, OddChunkSizesMatchToo) {
  // Chunk boundaries that never align with table sizes must not matter.
  const uint64_t seed = static_cast<uint64_t>(GetParam()) + 100;
  PipelineArtifacts reference = RunPipeline(4, 1024, seed);
  for (size_t chunk : {size_t{1}, size_t{3}}) {
    PipelineArtifacts candidate = RunPipeline(4, chunk, seed);
    ExpectIdenticalArtifacts(reference, candidate,
                             "chunk=" + std::to_string(chunk));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarPropertyTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace gpivot
