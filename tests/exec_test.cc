// Unit tests for the physical relational operators.
#include <gtest/gtest.h>

#include "exec/basic_ops.h"
#include "exec/group_by.h"
#include "exec/join.h"
#include "test_util.h"

namespace gpivot {
namespace {

using testing::BagEqual;
using testing::D;
using testing::I;
using testing::MakeTable;
using testing::N;
using testing::S;

Table People() {
  return MakeTable({{"id", DataType::kInt64},
                    {"dept", DataType::kString},
                    {"salary", DataType::kInt64}},
                   {{I(1), S("eng"), I(100)},
                    {I(2), S("eng"), I(120)},
                    {I(3), S("ops"), I(90)},
                    {I(4), S("ops"), N()},
                    {I(5), S("hr"), I(80)}});
}

TEST(SelectTest, FiltersWithThreeValuedLogic) {
  ASSERT_OK_AND_ASSIGN(Table result,
                       exec::Select(People(), Gt(Col("salary"),
                                                 Lit(int64_t{95}))));
  EXPECT_EQ(result.num_rows(), 2u);  // NULL salary filtered out
}

TEST(SelectTest, UnknownColumnErrors) {
  EXPECT_FALSE(exec::Select(People(), Eq(Col("zz"), Lit(int64_t{1}))).ok());
}

TEST(ProjectTest, ReordersColumns) {
  ASSERT_OK_AND_ASSIGN(Table result,
                       exec::Project(People(), {"salary", "id"}));
  EXPECT_EQ(result.schema().num_columns(), 2u);
  EXPECT_EQ(result.rows()[0], (Row{I(100), I(1)}));
}

TEST(ProjectTest, DropColumns) {
  ASSERT_OK_AND_ASSIGN(Table result, exec::DropColumns(People(), {"dept"}));
  EXPECT_EQ(result.schema().ColumnNames(),
            (std::vector<std::string>{"id", "salary"}));
}

TEST(ProjectExprsTest, ComputedColumns) {
  ASSERT_OK_AND_ASSIGN(
      Table result,
      exec::ProjectExprs(People(),
                         {{"id", Col("id")},
                          {"double_salary", Mul(Col("salary"),
                                                Lit(int64_t{2}))}}));
  EXPECT_EQ(result.rows()[0], (Row{I(1), I(200)}));
  EXPECT_TRUE(result.rows()[3][1].is_null());
}

TEST(RenameTest, RenamesColumns) {
  ASSERT_OK_AND_ASSIGN(Table result,
                       exec::RenameColumns(People(), {{"dept", "team"}}));
  EXPECT_TRUE(result.schema().HasColumn("team"));
  EXPECT_FALSE(result.schema().HasColumn("dept"));
}

TEST(SetOpsTest, UnionAllAndBagDifference) {
  Table a = MakeTable({{"x", DataType::kInt64}}, {{I(1)}, {I(1)}, {I(2)}});
  Table b = MakeTable({{"x", DataType::kInt64}}, {{I(1)}, {I(3)}});
  ASSERT_OK_AND_ASSIGN(Table u, exec::UnionAll(a, b));
  EXPECT_EQ(u.num_rows(), 5u);
  // Bag difference cancels one copy per matching row.
  ASSERT_OK_AND_ASSIGN(Table d, exec::BagDifference(a, b));
  Table expected = MakeTable({{"x", DataType::kInt64}}, {{I(1)}, {I(2)}});
  EXPECT_TRUE(BagEqual(expected, d));
}

TEST(SetOpsTest, SchemaMismatchErrors) {
  Table a = MakeTable({{"x", DataType::kInt64}}, {});
  Table b = MakeTable({{"y", DataType::kInt64}}, {});
  EXPECT_FALSE(exec::UnionAll(a, b).ok());
  EXPECT_FALSE(exec::BagDifference(a, b).ok());
}

TEST(DistinctTest, RemovesDuplicates) {
  Table a = MakeTable({{"x", DataType::kInt64}}, {{I(1)}, {I(1)}, {N()}, {N()}});
  ASSERT_OK_AND_ASSIGN(Table d, exec::Distinct(a));
  EXPECT_EQ(d.num_rows(), 2u);  // ⊥ groups with ⊥
}

TEST(KeySetTest, SemiAndAntiJoin) {
  std::unordered_set<Row, RowHash, RowEq> keys = {{S("eng")}};
  ASSERT_OK_AND_ASSIGN(Table semi,
                       exec::SemiJoinKeySet(People(), {"dept"}, keys));
  EXPECT_EQ(semi.num_rows(), 2u);
  ASSERT_OK_AND_ASSIGN(Table anti,
                       exec::AntiJoinKeySet(People(), {"dept"}, keys));
  EXPECT_EQ(anti.num_rows(), 3u);
  ASSERT_OK_AND_ASSIGN(auto collected,
                       exec::CollectKeySet(People(), {"dept"}));
  EXPECT_EQ(collected.size(), 3u);
}

TEST(SortTest, StableSortNullsFirst) {
  Table t = MakeTable({{"x", DataType::kInt64}, {"tag", DataType::kString}},
                      {{I(2), S("a")}, {N(), S("b")}, {I(1), S("c")},
                       {I(2), S("d")}});
  ASSERT_OK_AND_ASSIGN(Table sorted, exec::SortBy(t, {"x"}));
  EXPECT_TRUE(sorted.rows()[0][0].is_null());
  EXPECT_EQ(sorted.rows()[1][0], I(1));
  // Stability: the two x=2 rows keep input order.
  EXPECT_EQ(sorted.rows()[2][1], S("a"));
  EXPECT_EQ(sorted.rows()[3][1], S("d"));
}

// ---- Joins --------------------------------------------------------------------

Table Depts() {
  Table t = MakeTable(
      {{"dept", DataType::kString}, {"floor", DataType::kInt64}},
      {{S("eng"), I(3)}, {S("ops"), I(1)}, {S("sales"), I(2)}});
  EXPECT_TRUE(t.SetKey({"dept"}).ok());
  return t;
}

TEST(JoinTest, InnerEquiJoinDropsRightKeys) {
  ASSERT_OK_AND_ASSIGN(Table result, exec::EquiJoin(People(), Depts(),
                                                    {"dept"}));
  EXPECT_EQ(result.schema().ColumnNames(),
            (std::vector<std::string>{"id", "dept", "salary", "floor"}));
  EXPECT_EQ(result.num_rows(), 4u);  // hr has no dept row
}

TEST(JoinTest, InnerJoinSymmetricWhenSidesSwap) {
  // The build-side swap optimization must not change the result bag.
  exec::JoinSpec spec;
  spec.left_keys = {"dept"};
  spec.right_keys = {"dept"};
  ASSERT_OK_AND_ASSIGN(Table small_left,
                       exec::HashJoin(Depts(), People(), spec));
  ASSERT_OK_AND_ASSIGN(Table small_right,
                       exec::HashJoin(People(), Depts(), spec));
  EXPECT_EQ(small_left.num_rows(), small_right.num_rows());
}

TEST(JoinTest, LeftOuterPadsWithNull) {
  exec::JoinSpec spec;
  spec.left_keys = {"dept"};
  spec.right_keys = {"dept"};
  spec.type = exec::JoinType::kLeftOuter;
  ASSERT_OK_AND_ASSIGN(Table result, exec::HashJoin(People(), Depts(), spec));
  EXPECT_EQ(result.num_rows(), 5u);
  bool found_hr = false;
  for (const Row& row : result.rows()) {
    if (row[1] == S("hr")) {
      found_hr = true;
      EXPECT_TRUE(row[3].is_null());
    }
  }
  EXPECT_TRUE(found_hr);
}

TEST(JoinTest, FullOuterCoalescesKeys) {
  exec::JoinSpec spec;
  spec.left_keys = {"dept"};
  spec.right_keys = {"dept"};
  spec.type = exec::JoinType::kFullOuter;
  ASSERT_OK_AND_ASSIGN(Table result, exec::HashJoin(People(), Depts(), spec));
  // 5 left rows + 1 right-only row (sales).
  EXPECT_EQ(result.num_rows(), 6u);
  bool found_sales = false;
  for (const Row& row : result.rows()) {
    if (row[1] == S("sales")) {
      found_sales = true;
      EXPECT_TRUE(row[0].is_null());   // left id ⊥
      EXPECT_EQ(row[3], I(2));          // right payload present
    }
  }
  EXPECT_TRUE(found_sales);
}

TEST(JoinTest, SemiAndAnti) {
  exec::JoinSpec spec;
  spec.left_keys = {"dept"};
  spec.right_keys = {"dept"};
  spec.type = exec::JoinType::kLeftSemi;
  ASSERT_OK_AND_ASSIGN(Table semi, exec::HashJoin(People(), Depts(), spec));
  EXPECT_EQ(semi.num_rows(), 4u);
  EXPECT_EQ(semi.schema(), People().schema());
  spec.type = exec::JoinType::kLeftAnti;
  ASSERT_OK_AND_ASSIGN(Table anti, exec::HashJoin(People(), Depts(), spec));
  EXPECT_EQ(anti.num_rows(), 1u);
}

TEST(JoinTest, NullKeysNeverMatch) {
  Table left = MakeTable({{"k", DataType::kInt64}}, {{N()}, {I(1)}});
  Table right = MakeTable({{"k", DataType::kInt64}, {"v", DataType::kInt64}},
                          {{N(), I(10)}, {I(1), I(20)}});
  exec::JoinSpec spec;
  spec.left_keys = {"k"};
  spec.right_keys = {"k"};
  ASSERT_OK_AND_ASSIGN(Table result, exec::HashJoin(left, right, spec));
  EXPECT_EQ(result.num_rows(), 1u);  // only the 1=1 match
}

TEST(JoinTest, ResidualPredicate) {
  exec::JoinSpec spec;
  spec.left_keys = {"dept"};
  spec.right_keys = {"dept"};
  spec.residual = Gt(Col("salary"), Col("floor"));
  ASSERT_OK_AND_ASSIGN(Table result, exec::HashJoin(People(), Depts(), spec));
  EXPECT_EQ(result.num_rows(), 3u);  // NULL salary row fails residual
}

TEST(JoinTest, PayloadCollisionErrors) {
  Table left = MakeTable({{"k", DataType::kInt64}, {"v", DataType::kInt64}},
                         {});
  Table right = MakeTable({{"k", DataType::kInt64}, {"v", DataType::kInt64}},
                          {});
  exec::JoinSpec spec;
  spec.left_keys = {"k"};
  spec.right_keys = {"k"};
  EXPECT_FALSE(exec::HashJoin(left, right, spec).ok());
}

TEST(JoinTest, CrossJoinViaEmptyKeys) {
  Table left = MakeTable({{"x", DataType::kInt64}}, {{I(1)}, {I(2)}});
  Table right = MakeTable({{"y", DataType::kInt64}}, {{I(10)}, {I(20)}});
  exec::JoinSpec spec;  // no keys: cross product
  ASSERT_OK_AND_ASSIGN(Table result, exec::HashJoin(left, right, spec));
  EXPECT_EQ(result.num_rows(), 4u);
}

TEST(NestedLoopJoinTest, ThetaJoin) {
  Table left = MakeTable({{"x", DataType::kInt64}}, {{I(1)}, {I(5)}});
  Table right = MakeTable({{"y", DataType::kInt64}}, {{I(3)}, {I(7)}});
  ASSERT_OK_AND_ASSIGN(
      Table result,
      exec::NestedLoopJoin(left, right, Lt(Col("x"), Col("y")),
                           exec::JoinType::kInner));
  EXPECT_EQ(result.num_rows(), 3u);
  ASSERT_OK_AND_ASSIGN(
      Table outer,
      exec::NestedLoopJoin(left, right, Gt(Col("x"), Col("y")),
                           exec::JoinType::kLeftOuter));
  EXPECT_EQ(outer.num_rows(), 2u);  // x=1 padded, x=5 matches y=3
}

// ---- GroupBy -------------------------------------------------------------------

TEST(GroupByTest, BasicAggregates) {
  ASSERT_OK_AND_ASSIGN(
      Table result,
      exec::GroupBy(People(), {"dept"},
                    {AggSpec::Sum("salary", "total"),
                     AggSpec::Count("salary", "cnt"),
                     AggSpec::CountStar("rows"),
                     AggSpec::Min("salary", "lo"),
                     AggSpec::Max("salary", "hi")}));
  EXPECT_EQ(result.num_rows(), 3u);
  for (const Row& row : result.rows()) {
    if (row[0] == S("ops")) {
      EXPECT_EQ(row[1], I(90));  // NULL disregarded
      EXPECT_EQ(row[2], I(1));   // COUNT(salary) skips ⊥
      EXPECT_EQ(row[3], I(2));   // COUNT(*) does not
      EXPECT_EQ(row[4], I(90));
      EXPECT_EQ(row[5], I(90));
    }
  }
  EXPECT_EQ(result.key(), (std::vector<std::string>{"dept"}));
}

TEST(GroupByTest, NullGroupValuesGroupTogether) {
  Table t = MakeTable({{"g", DataType::kString}, {"v", DataType::kInt64}},
                      {{N(), I(1)}, {N(), I(2)}, {S("a"), I(3)}});
  ASSERT_OK_AND_ASSIGN(Table result,
                       exec::GroupBy(t, {"g"}, {AggSpec::Sum("v", "s")}));
  EXPECT_EQ(result.num_rows(), 2u);
}

TEST(GroupByTest, EmptyInputYieldsNoGroups) {
  Table t{Schema({{"g", DataType::kString}, {"v", DataType::kInt64}})};
  ASSERT_OK_AND_ASSIGN(Table result,
                       exec::GroupBy(t, {"g"}, {AggSpec::Sum("v", "s")}));
  EXPECT_EQ(result.num_rows(), 0u);
}

TEST(GroupByTest, GlobalAggregation) {
  ASSERT_OK_AND_ASSIGN(Table result,
                       exec::GroupBy(People(), {},
                                     {AggSpec::CountStar("n")}));
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][0], I(5));
}

TEST(GroupByTest, UnknownAggregateInputErrors) {
  EXPECT_FALSE(
      exec::GroupBy(People(), {"dept"}, {AggSpec::Sum("zz", "s")}).ok());
}

}  // namespace
}  // namespace gpivot
