// Horizontal aggregation via GUNPIVOT (§5.3.4 / Fig. 18 and Fig. 21):
// summing values that live in several columns of the same row by unpivoting
// first, plus the Eq. 15 rewrite that pre-aggregates below the GUNPIVOT and
// the Eq. 18 rewrite that pushes a GUNPIVOT below a GROUPBY.
//
//   ./examples/horizontal_aggregation
#include <iostream>

#include "algebra/plan.h"
#include "core/pivot_spec.h"
#include "rewrite/rules.h"
#include "util/check.h"

namespace {

using gpivot::AggSpec;
using gpivot::Catalog;
using gpivot::DataType;
using gpivot::PlanPtr;
using gpivot::Schema;
using gpivot::Table;
using gpivot::UnpivotGroup;
using gpivot::UnpivotSpec;
using gpivot::Value;

Value S(const char* s) { return Value::Str(s); }
Value I(int64_t i) { return Value::Int(i); }

void ShowPlan(const char* title, const PlanPtr& plan,
              const Catalog& catalog) {
  std::cout << "=== " << title << " ===\n" << gpivot::PlanToString(plan)
            << "result:\n"
            << gpivot::Evaluate(plan, catalog).ValueOrDie().Sorted()
                   .ToString()
            << "\n";
}

}  // namespace

int main() {
  // The Fig. 18 sales table, already in pivoted (horizontal) form: one
  // price column per (manufacturer, type).
  Table sales{Schema({{"Country", DataType::kString},
                      {"Sony**TV**Price", DataType::kInt64},
                      {"Sony**VCR**Price", DataType::kInt64},
                      {"Panasonic**TV**Price", DataType::kInt64},
                      {"Panasonic**VCR**Price", DataType::kInt64}})};
  sales.AddRow({S("USA"), I(220), I(250), I(205), Value::Null()});
  sales.AddRow({S("Japan"), I(210), Value::Null(), I(215), I(280)});
  GPIVOT_CHECK(sales.SetKey({"Country"}).ok());

  Catalog catalog;
  GPIVOT_CHECK(catalog.AddTable("sales", std::move(sales)).ok());
  PlanPtr scan = gpivot::MakeScan(catalog, "sales").ValueOrDie();

  // GUNPIVOT decodes the cells into (Manu, Type, Price) rows ...
  UnpivotSpec unspec;
  unspec.name_columns = {"Manu", "Type"};
  unspec.value_columns = {"Price"};
  for (const char* manu : {"Sony", "Panasonic"}) {
    for (const char* type : {"TV", "VCR"}) {
      UnpivotGroup group;
      group.combo = {S(manu), S(type)};
      group.source_columns = {std::string(manu) + "**" + type + "**Price"};
      unspec.groups.push_back(std::move(group));
    }
  }
  PlanPtr unpivoted = gpivot::MakeGUnpivot(scan, unspec);

  // ... so a plain GROUPBY sums *across the columns* of each original row:
  // horizontal aggregation (Fig. 18's total price per country).
  PlanPtr per_country = gpivot::MakeGroupBy(
      unpivoted, {"Country"}, {AggSpec::Sum("Price", "TotalPrice")});
  ShowPlan("Fig. 18: per-country total across columns", per_country,
           catalog);

  // Eq. 15: the GROUPBY can pre-aggregate below the GUNPIVOT (two-level
  // aggregation) — same result.
  PlanPtr rewritten =
      gpivot::rewrite::PullUnpivotThroughGroupBy(per_country).ValueOrDie();
  ShowPlan("Eq. 15 rewrite: pre-aggregate below the GUNPIVOT", rewritten,
           catalog);

  // Grouping by a *name* column works too: per-manufacturer totals.
  PlanPtr per_manu = gpivot::MakeGroupBy(
      gpivot::MakeGUnpivot(scan, unspec), {"Manu"},
      {AggSpec::Sum("Price", "TotalPrice")});
  ShowPlan("per-manufacturer totals (grouping on a decoded name column)",
           per_manu, catalog);
  std::cout << "Eq. 15 rewrite of the same query:\n"
            << gpivot::PlanToString(
                   gpivot::rewrite::PullUnpivotThroughGroupBy(per_manu)
                       .ValueOrDie())
            << "\n";

  // Two different aggregates over the same value column cannot both be
  // pre-aggregated in place — the rewrite refuses rather than guessing.
  PlanPtr two_aggs = gpivot::MakeGroupBy(
      gpivot::MakeGUnpivot(scan, unspec), {"Manu"},
      {AggSpec::Sum("Price", "TotalPrice"),
       AggSpec::Count("Price", "Listings")});
  auto refused = gpivot::rewrite::PullUnpivotThroughGroupBy(two_aggs);
  GPIVOT_CHECK(refused.status().IsNotApplicable()) << "expected refusal";
  std::cout << "SUM+COUNT over the same value column: "
            << refused.status().ToString() << "\n";
  return 0;
}
