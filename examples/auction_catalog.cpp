// The introduction's sparse auction-catalog scenario, maintained
// incrementally: attributes are stored vertically (one row per attribute),
// the materialized view pivots them into a horizontal catalog joined with
// payment data, and the Fig. 23 update rules keep the view fresh as
// attribute rows are inserted and deleted (the Fig. 24–26 walkthrough).
//
//   ./examples/auction_catalog
#include <iostream>

#include "algebra/plan.h"
#include "core/pivot_spec.h"
#include "ivm/view_manager.h"
#include "util/check.h"

namespace {

using gpivot::Catalog;
using gpivot::DataType;
using gpivot::PivotSpec;
using gpivot::PlanPtr;
using gpivot::Schema;
using gpivot::Table;
using gpivot::Value;
using gpivot::ivm::Delta;
using gpivot::ivm::RefreshStrategy;
using gpivot::ivm::SourceDeltas;
using gpivot::ivm::ViewManager;

Value S(const char* s) { return Value::Str(s); }
Value I(int64_t i) { return Value::Int(i); }

void Show(const ViewManager& manager, const char* moment) {
  std::cout << "--- view after " << moment << " ---\n"
            << manager.GetView("catalog").value()->table().Sorted().ToString()
            << "\n";
}

SourceDeltas ItemsDelta(const ViewManager& manager,
                        std::vector<gpivot::Row> inserts,
                        std::vector<gpivot::Row> deletes) {
  Delta delta = Delta::Empty(
      manager.catalog().GetTable("Items").value()->schema());
  for (gpivot::Row& row : inserts) delta.inserts.AddRow(std::move(row));
  for (gpivot::Row& row : deletes) delta.deletes.AddRow(std::move(row));
  SourceDeltas deltas;
  deltas.emplace("Items", std::move(delta));
  return deltas;
}

}  // namespace

int main() {
  // Vertical attribute storage (Fig. 24's Items table).
  Table items{Schema({{"ID", DataType::kInt64},
                      {"Attribute", DataType::kString},
                      {"Value", DataType::kString}})};
  items.AddRow({I(1), S("Manu"), S("Sony")});
  items.AddRow({I(1), S("Type"), S("TV")});
  items.AddRow({I(2), S("Manu"), S("Panasonic")});
  GPIVOT_CHECK(items.SetKey({"ID", "Attribute"}).ok());

  Table payment{Schema({{"ID", DataType::kInt64},
                        {"Price", DataType::kInt64}})};
  payment.AddRow({I(1), I(200)});
  payment.AddRow({I(2), I(300)});
  GPIVOT_CHECK(payment.SetKey({"ID"}).ok());

  Catalog base;
  GPIVOT_CHECK(base.AddTable("Items", std::move(items)).ok());
  GPIVOT_CHECK(base.AddTable("Payment", std::move(payment)).ok());

  // View: GPIVOT(Items) ⋈ Payment (Fig. 24).
  PivotSpec spec;
  spec.pivot_by = {"Attribute"};
  spec.pivot_on = {"Value"};
  spec.combos = {{S("Manu")}, {S("Type")}};
  PlanPtr view = gpivot::MakeJoin(
      gpivot::MakeGPivot(gpivot::MakeScan(base, "Items").ValueOrDie(), spec),
      gpivot::MakeScan(base, "Payment").ValueOrDie(), {"ID"});
  std::cout << "view definition:\n" << gpivot::PlanToString(view) << "\n";

  ViewManager manager(std::move(base));
  // kUpdate pulls the pivot to the top (Fig. 26's plan) and maintains with
  // the Fig. 23 update rules — in-place MERGE instead of delete+reinsert.
  GPIVOT_CHECK(manager.DefineView("catalog", view, RefreshStrategy::kUpdate)
                   .ok());
  std::cout << "maintenance plan:\n"
            << manager.GetPlan("catalog").value()->ToString() << "\n";
  Show(manager, "initial materialization");

  // Fig. 25/26's inserts: two new attribute rows. Auction 2's view row is
  // updated in place; auction 3 gets a fresh row once its first attribute
  // arrives... but 3 has no Payment row, so the join keeps it out.
  GPIVOT_CHECK(manager
                   .ApplyUpdate(ItemsDelta(manager,
                                           {{I(2), S("Type"), S("DVD")},
                                            {I(3), S("Type"), S("VCR")}},
                                           {}))
                   .ok());
  Show(manager, "inserting (2,Type,DVD) and (3,Type,VCR)");

  // Deleting auction 1's Type row only ⊥-s that cell.
  GPIVOT_CHECK(manager
                   .ApplyUpdate(ItemsDelta(manager, {},
                                           {{I(1), S("Type"), S("TV")}}))
                   .ok());
  Show(manager, "deleting (1,Type,TV)");

  // Deleting auction 1's last attribute removes its view row entirely.
  GPIVOT_CHECK(manager
                   .ApplyUpdate(ItemsDelta(manager, {},
                                           {{I(1), S("Manu"), S("Sony")}}))
                   .ok());
  Show(manager, "deleting (1,Manu,Sony) — auction 1 leaves the view");

  // Consistency check against full recomputation.
  Table recomputed = manager.RecomputeFromScratch("catalog").ValueOrDie();
  GPIVOT_CHECK(
      recomputed.BagEquals(manager.GetView("catalog").value()->table()))
      << "incremental view diverged from recomputation";
  std::cout << "incremental view == full recomputation ✓\n";
  return 0;
}
