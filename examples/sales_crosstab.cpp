// The Fig. 2 ROLAP view end-to-end: a vertical Payment table is pivoted,
// joined with Product, aggregated per (Manu, Type), and pivoted again into
// a crosstab. The rewriter combines/pulls the two pivots into one GPIVOT
// over a GROUPBY (Fig. 11 + Eq. 6), the planner injects the COUNT(*) that
// makes it delete-maintainable (Fig. 28), and the Fig. 27 combined update
// rules maintain it.
//
//   ./examples/sales_crosstab
#include <iostream>

#include "algebra/plan.h"
#include "core/pivot_spec.h"
#include "ivm/view_manager.h"
#include "rewrite/rewriter.h"
#include "util/check.h"

namespace {

using gpivot::AggSpec;
using gpivot::Catalog;
using gpivot::DataType;
using gpivot::PivotSpec;
using gpivot::PlanPtr;
using gpivot::Schema;
using gpivot::Table;
using gpivot::Value;
using gpivot::ivm::Delta;
using gpivot::ivm::RefreshStrategy;
using gpivot::ivm::SourceDeltas;
using gpivot::ivm::ViewManager;

Value S(const char* s) { return Value::Str(s); }
Value I(int64_t i) { return Value::Int(i); }

}  // namespace

int main() {
  // Payment(AuctionID, Payment, Price): vertical per-payment-type prices.
  Table payment{Schema({{"AuctionID", DataType::kInt64},
                        {"Payment", DataType::kString},
                        {"Price", DataType::kInt64}})};
  int64_t id = 0;
  for (const char* type : {"TV", "TV", "VCR", "TV", "VCR", "VCR"}) {
    ++id;
    (void)type;
    payment.AddRow({I(id), S("Credit"), I(100 + 10 * id)});
    if (id % 2 == 0) payment.AddRow({I(id), S("ByAir"), I(20 + id)});
  }
  GPIVOT_CHECK(payment.SetKey({"AuctionID", "Payment"}).ok());

  // Product(AuctionID, Manu, Type).
  Table product{Schema({{"AuctionID", DataType::kInt64},
                        {"Manu", DataType::kString},
                        {"Type", DataType::kString}})};
  product.AddRow({I(1), S("Sony"), S("TV")});
  product.AddRow({I(2), S("Sony"), S("TV")});
  product.AddRow({I(3), S("Sony"), S("VCR")});
  product.AddRow({I(4), S("Panasonic"), S("TV")});
  product.AddRow({I(5), S("Panasonic"), S("VCR")});
  product.AddRow({I(6), S("Panasonic"), S("VCR")});
  GPIVOT_CHECK(product.SetKey({"AuctionID"}).ok());

  Catalog base;
  GPIVOT_CHECK(base.AddTable("Payment", std::move(payment)).ok());
  GPIVOT_CHECK(base.AddTable("Product", std::move(product)).ok());

  // Fig. 2, bottom-up: pivot payments, join products, aggregate, pivot the
  // aggregates by Type into a crosstab.
  PivotSpec lower;
  lower.pivot_by = {"Payment"};
  lower.pivot_on = {"Price"};
  lower.combos = {{S("Credit")}, {S("ByAir")}};
  PlanPtr pivoted = gpivot::MakeGPivot(
      gpivot::MakeScan(base, "Payment").ValueOrDie(), lower);
  PlanPtr joined = gpivot::MakeJoin(
      std::move(pivoted), gpivot::MakeScan(base, "Product").ValueOrDie(),
      {"AuctionID"});
  // Aggregate each pivoted cell in place (Eq. 8's naming convention).
  std::vector<AggSpec> aggs;
  for (const std::string& cell : lower.OutputColumnNames()) {
    aggs.push_back(AggSpec::Sum(cell, cell));
  }
  PlanPtr aggregated =
      gpivot::MakeGroupBy(std::move(joined), {"Manu", "Type"}, aggs);
  PivotSpec upper;
  upper.pivot_by = {"Type"};
  upper.pivot_on = lower.OutputColumnNames();
  upper.combos = {{S("TV")}, {S("VCR")}};
  PlanPtr view = gpivot::MakeGPivot(std::move(aggregated), upper);

  std::cout << "=== Fig. 2 view, as written ===\n"
            << gpivot::PlanToString(view) << "\n";

  auto outcome = gpivot::rewrite::PullUpPivots(view).ValueOrDie();
  std::cout << "=== after pullup + combination (Fig. 11 / Eq. 6) ===\n"
            << gpivot::PlanToString(outcome.plan) << "top shape: "
            << gpivot::rewrite::TopShapeToString(outcome.top_shape)
            << ", pivots pulled: " << outcome.pivots_pulled
            << ", combined: " << outcome.pivots_combined << "\n\n";

  ViewManager manager(std::move(base));
  GPIVOT_CHECK(manager
                   .DefineView("crosstab", view,
                               RefreshStrategy::kCombinedGroupBy)
                   .ok());
  std::cout << "=== maintenance plan (note the injected COUNT(*), "
               "Fig. 28) ===\n"
            << manager.GetPlan("crosstab").value()->ToString() << "\n";
  std::cout << "--- crosstab ---\n"
            << manager.GetView("crosstab").value()->table().Sorted()
                   .ToString()
            << "\n";

  // Delete one Credit payment and insert a ByAir one; Fig. 27's combined
  // rules patch the sums and counts without touching any group's rows.
  Delta delta = Delta::Empty(
      manager.catalog().GetTable("Payment").value()->schema());
  delta.deletes.AddRow({I(3), S("Credit"), I(130)});
  delta.inserts.AddRow({I(1), S("ByAir"), I(33)});
  SourceDeltas deltas;
  deltas.emplace("Payment", std::move(delta));
  GPIVOT_CHECK(manager.ApplyUpdate(deltas).ok());

  std::cout << "--- crosstab after -1 Credit(VCR/Sony), +1 ByAir(TV/Sony) "
               "---\n"
            << manager.GetView("crosstab").value()->table().Sorted()
                   .ToString()
            << "\n";

  Table recomputed = manager.RecomputeFromScratch("crosstab").ValueOrDie();
  GPIVOT_CHECK(
      recomputed.BagEquals(manager.GetView("crosstab").value()->table()))
      << "incremental crosstab diverged from recomputation";
  std::cout << "incremental crosstab == full recomputation ✓\n";
  return 0;
}
