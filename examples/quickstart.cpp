// Quickstart: build a table, run the simple PIVOT/UNPIVOT of Fig. 1 and the
// generalized GPIVOT/GUNPIVOT of Fig. 5, and print the results.
//
//   ./examples/quickstart
#include <iostream>

#include "core/gpivot.h"
#include "core/pivot_spec.h"
#include "relation/table.h"
#include "util/check.h"

namespace {

using gpivot::DataType;
using gpivot::PivotSpec;
using gpivot::Schema;
using gpivot::Table;
using gpivot::UnpivotSpec;
using gpivot::Value;

Value S(const char* s) { return Value::Str(s); }
Value I(int64_t i) { return Value::Int(i); }

void Figure1() {
  std::cout << "=== Fig. 1: simple PIVOT / UNPIVOT ===\n";
  Table item_info{Schema({{"AuctionID", DataType::kInt64},
                          {"Attribute", DataType::kString},
                          {"Value", DataType::kString}})};
  item_info.AddRow({I(1), S("Manufacturer"), S("Sony")});
  item_info.AddRow({I(1), S("Type"), S("TV")});
  item_info.AddRow({I(2), S("Manufacturer"), S("Panasonic")});
  item_info.AddRow({I(3), S("Type"), S("VCR")});
  item_info.AddRow({I(3), S("Color"), S("Black")});
  GPIVOT_CHECK(item_info.SetKey({"AuctionID", "Attribute"}).ok());
  std::cout << "ItemInfo (vertical storage):\n" << item_info.ToString();

  Table pivoted = gpivot::SimplePivot(item_info, "Attribute", "Value",
                                      {S("Manufacturer"), S("Type")})
                      .ValueOrDie();
  std::cout << "\nPIVOT Value by Attribute [Manufacturer, Type]:\n"
            << pivoted.ToString();

  Table unpivoted = gpivot::SimpleUnpivot(pivoted, {"Manufacturer", "Type"},
                                          "Attribute", "Value")
                        .ValueOrDie();
  std::cout << "\nUNPIVOT [Manufacturer, Type] (⊥ cells are skipped; the "
               "unlisted 'Color' attribute is gone):\n"
            << unpivoted.ToString();
}

void Figure5() {
  std::cout << "\n=== Fig. 5: GPIVOT / GUNPIVOT ===\n";
  Table sales{Schema({{"Country", DataType::kString},
                      {"Manu", DataType::kString},
                      {"Type", DataType::kString},
                      {"Price", DataType::kInt64},
                      {"Quantity", DataType::kInt64}})};
  sales.AddRow({S("USA"), S("Sony"), S("TV"), I(220), I(100)});
  sales.AddRow({S("USA"), S("Sony"), S("VCR"), I(250), I(50)});
  sales.AddRow({S("USA"), S("Panasonic"), S("TV"), I(205), I(120)});
  sales.AddRow({S("Japan"), S("Sony"), S("TV"), I(210), I(200)});
  sales.AddRow({S("Japan"), S("Panasonic"), S("VCR"), I(280), I(60)});
  GPIVOT_CHECK(sales.SetKey({"Country", "Manu", "Type"}).ok());
  std::cout << "Sales:\n" << sales.ToString();

  // Pivot both measures (Price, Quantity) by both dimensions (Manu, Type)
  // for every combination {Sony, Panasonic} x {TV, VCR}.
  PivotSpec spec;
  spec.pivot_by = {"Manu", "Type"};
  spec.pivot_on = {"Price", "Quantity"};
  spec.combos = PivotSpec::CrossProduct(
      {{S("Sony"), S("Panasonic")}, {S("TV"), S("VCR")}});
  std::cout << "\n" << spec.ToString() << ":\n";
  Table pivoted = gpivot::GPivot(sales, spec).ValueOrDie();
  std::cout << pivoted.ToString();

  std::cout << "\nGUNPIVOT (inverse) recovers the original rows:\n";
  Table unpivoted =
      gpivot::GUnpivot(pivoted, UnpivotSpec::InverseOf(spec)).ValueOrDie();
  std::cout << unpivoted.ToString();
}

}  // namespace

int main() {
  Figure1();
  Figure5();
  return 0;
}
