// Prints the algebra trees of the paper's three experiment views before and
// after the pivot-pullup rewriting (§3 step 1, §5), plus a few standalone
// rule applications — a tour of the query-transformation half of the paper.
//
//   ./examples/rewrite_explorer
#include <iostream>

#include "algebra/plan.h"
#include "core/pivot_spec.h"
#include "rewrite/rewriter.h"
#include "rewrite/rules.h"
#include "tpch/dbgen.h"
#include "tpch/views.h"
#include "util/check.h"

namespace {

using gpivot::Catalog;
using gpivot::PlanPtr;
using gpivot::Value;

void ShowRewrite(const char* title, const PlanPtr& original) {
  std::cout << "=== " << title << " ===\n"
            << gpivot::PlanToString(original);
  auto outcome = gpivot::rewrite::PullUpPivots(original).ValueOrDie();
  std::cout << "--- after PullUpPivots (shape: "
            << gpivot::rewrite::TopShapeToString(outcome.top_shape)
            << ", pulled " << outcome.pivots_pulled << ", combined "
            << outcome.pivots_combined << ") ---\n"
            << gpivot::PlanToString(outcome.plan) << "\n";
}

}  // namespace

int main() {
  gpivot::tpch::Config config;
  config.scale_factor = 0.001;
  Catalog catalog =
      gpivot::tpch::MakeCatalog(gpivot::tpch::Generate(config)).ValueOrDie();

  ShowRewrite("View 1 (Fig. 32): GPIVOT(lineitem) ⋈ orders ⋈ customer",
              gpivot::tpch::View1(catalog, config.max_line_numbers)
                  .ValueOrDie());
  ShowRewrite(
      "View 2 (Fig. 36): σ(cell)(GPIVOT(lineitem)) ⋈ orders ⋈ customer — "
      "the σ∘GPIVOT pair travels together (§6.3.2)",
      gpivot::tpch::View2(catalog, config.max_line_numbers, 30000.0)
          .ValueOrDie());
  ShowRewrite("View 3 (Fig. 39): GPIVOT(F(lineitem ⋈ orders ⋈ customer))",
              gpivot::tpch::View3(catalog, config.first_year,
                                  config.num_years)
                  .ValueOrDie());

  // Standalone rules on View 2's σ∘GPIVOT pair.
  PlanPtr lineitem = gpivot::MakeScan(catalog, "lineitem").ValueOrDie();
  gpivot::PivotSpec spec;
  spec.pivot_by = {"linenumber"};
  spec.pivot_on = {"quantity", "extendedprice"};
  spec.combos = {{Value::Int(1)}, {Value::Int(2)}};
  PlanPtr select = gpivot::MakeSelect(
      gpivot::MakeGPivot(lineitem, spec),
      gpivot::Gt(gpivot::Col("1**extendedprice"),
                 gpivot::Lit(30000.0)));

  std::cout << "=== Eq. 7: pushing a cell-σ below the GPIVOT becomes a "
               "self-join ===\n"
            << gpivot::PlanToString(select);
  auto pushed = gpivot::rewrite::PushSelectBelowPivot(select).ValueOrDie();
  std::cout << "--- rewritten ---\n" << gpivot::PlanToString(pushed) << "\n";

  std::cout << "=== Eq. 9: GUNPIVOT cancels its GPIVOT ===\n";
  PlanPtr pivot = gpivot::MakeGPivot(lineitem, spec);
  PlanPtr unpivot = gpivot::MakeGUnpivot(
      pivot, gpivot::UnpivotSpec::InverseOf(spec));
  std::cout << gpivot::PlanToString(unpivot);
  auto cancelled =
      gpivot::rewrite::CancelUnpivotOfPivot(unpivot).ValueOrDie();
  std::cout << "--- rewritten ---\n" << gpivot::PlanToString(cancelled);
  return 0;
}
